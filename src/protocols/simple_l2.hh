/**
 * @file
 * Protocol-free shared cache used by both baselines (BL = L1
 * disabled, and the non-coherent-L1 configuration). Reads return the
 * current data; writes perform immediately. Coherence comes from the
 * fact that the L2 is the single point of truth (BL) or is simply
 * not guaranteed (non-coherent L1, only used for workloads that do
 * not need it). Fill responses carry the service cycle in pkt.gwct.
 */

#ifndef GTSC_PROTOCOLS_SIMPLE_L2_HH_
#define GTSC_PROTOCOLS_SIMPLE_L2_HH_

#include <vector>

#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"

namespace gtsc::protocols
{

class SimpleL2 final : public mem::L2Controller
{
  public:
    SimpleL2(PartitionId part, const sim::Config &cfg,
             sim::StatSet &stats, sim::EventQueue &events,
             mem::DramChannel &dram, mem::MainMemory &memory,
             mem::CoherenceProbe *probe);

    void receiveRequest(mem::Packet &&pkt, Cycle now) override;
    /** Service-queue pump; O(1) when the queue is empty. */
    void
    tick(Cycle now) override
    {
        if (!queue_.empty())
            tickQueue(now);
    }

    /**
     * A non-empty service queue processes (and accrues occupancy
     * stats) every cycle; misses wake via DRAM events.
     */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        return queue_.empty() ? kCycleNever : now + 1;
    }
    void flushAll(Cycle now) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

  private:
    struct MissEntry
    {
        std::vector<mem::Packet> waiters;
    };

    void tickQueue(Cycle now);
    bool process(mem::Packet &pkt, Cycle now);
    void serve(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now);
    void onDramFill(Addr line, const mem::LineData &data, Cycle now);
    void respond(mem::Packet &&resp, Cycle now);

    PartitionId part_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::DramChannel &dram_;
    mem::MainMemory &memory_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    sim::RingBuffer<mem::Packet> queue_;
    sim::PooledKeyMap<Addr, MissEntry> misses_;
    std::vector<mem::Packet> waitersScratch_;
    sim::SlotPool<mem::Packet> respPool_;

    unsigned ports_;
    Cycle accessLatency_;
    std::size_t mshrCapacity_;

    std::uint64_t *accesses_;
    std::uint64_t *hits_;
    std::uint64_t *missesStat_;
    std::uint64_t *writes_;
    std::uint64_t *evictions_;
    std::uint64_t *writebacks_;
    std::uint64_t *stallMshrFull_;
    std::uint64_t *queueCycles_;
    sim::Distribution *serviceLatency_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_SIMPLE_L2_HH_
