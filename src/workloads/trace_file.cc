#include "workloads/trace_file.hh"

#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace gtsc::workloads
{

namespace
{

std::uint64_t
parseNum(const std::string &tok, unsigned line_no)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(tok.c_str(), &end, 0);
    if (end == tok.c_str() || *end != '\0')
        GTSC_FATAL("trace line ", line_no, ": bad number '", tok, "'");
    return v;
}

} // namespace

TraceFileWorkload::TraceFileWorkload(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GTSC_FATAL("cannot open trace file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    name_ = "TRACE(" + path + ")";
    parse(buf.str());
}

std::unique_ptr<TraceFileWorkload>
TraceFileWorkload::fromString(const std::string &text,
                              const std::string &name)
{
    std::unique_ptr<TraceFileWorkload> wl(new TraceFileWorkload());
    wl->name_ = name;
    wl->parse(text);
    return wl;
}

void
TraceFileWorkload::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;
    KernelTrace *kernel = nullptr;
    std::vector<gpu::WarpInstr> *program = nullptr;

    auto need_kernel = [&]() -> KernelTrace & {
        if (!kernel) {
            kernels_.emplace_back();
            kernel = &kernels_.back();
        }
        return *kernel;
    };
    auto need_program = [&](unsigned ln) -> std::vector<gpu::WarpInstr> & {
        if (!program)
            GTSC_FATAL("trace line ", ln,
                       ": instruction before any 'warp' directive");
        return *program;
    };

    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string op;
        if (!(ls >> op))
            continue;
        std::vector<std::string> args;
        std::string tok;
        while (ls >> tok)
            args.push_back(tok);

        if (op == "kernel") {
            if (args.size() != 1)
                GTSC_FATAL("trace line ", line_no, ": kernel <n>");
            unsigned idx =
                static_cast<unsigned>(parseNum(args[0], line_no));
            if (idx != kernels_.size())
                GTSC_FATAL("trace line ", line_no,
                           ": kernels must be declared in order; "
                           "expected ",
                           kernels_.size());
            kernels_.emplace_back();
            kernel = &kernels_.back();
            program = nullptr;
        } else if (op == "mem") {
            if (args.size() != 2)
                GTSC_FATAL("trace line ", line_no,
                           ": mem <addr> <value>");
            need_kernel().memInit.emplace_back(
                parseNum(args[0], line_no),
                static_cast<std::uint32_t>(parseNum(args[1], line_no)));
        } else if (op == "warp") {
            if (args.size() != 2)
                GTSC_FATAL("trace line ", line_no, ": warp <sm> <warp>");
            auto key = std::make_pair(
                static_cast<unsigned>(parseNum(args[0], line_no)),
                static_cast<unsigned>(parseNum(args[1], line_no)));
            program = &need_kernel().programs[key];
        } else if (op == "ld") {
            if (args.empty() || args.size() > 2)
                GTSC_FATAL("trace line ", line_no, ": ld <addr> [mask]");
            std::uint32_t mask =
                args.size() == 2
                    ? static_cast<std::uint32_t>(
                          parseNum(args[1], line_no))
                    : 0x1u;
            need_program(line_no)
                .push_back(gpu::WarpInstr::loadStrided(
                    parseNum(args[0], line_no), gpu::kMaxWarpSize, 4,
                    mask));
        } else if (op == "st") {
            if (args.size() < 2 || args.size() > 3)
                GTSC_FATAL("trace line ", line_no,
                           ": st <addr> <value>|auto [mask]");
            std::uint32_t mask =
                args.size() == 3
                    ? static_cast<std::uint32_t>(
                          parseNum(args[2], line_no))
                    : 0x1u;
            gpu::WarpInstr instr = gpu::WarpInstr::storeStrided(
                parseNum(args[0], line_no), gpu::kMaxWarpSize, 4, mask);
            if (args[1] != "auto") {
                instr.hasValue = true;
                instr.value = static_cast<std::uint32_t>(
                    parseNum(args[1], line_no));
            }
            need_program(line_no).push_back(instr);
        } else if (op == "cmp") {
            if (args.size() != 1)
                GTSC_FATAL("trace line ", line_no, ": cmp <cycles>");
            need_program(line_no)
                .push_back(gpu::WarpInstr::compute(
                    static_cast<std::uint32_t>(
                        parseNum(args[0], line_no))));
        } else if (op == "fence") {
            need_program(line_no).push_back(gpu::WarpInstr::fence());
        } else if (op == "spin") {
            if (args.size() < 2 || args.size() > 3)
                GTSC_FATAL("trace line ", line_no,
                           ": spin <addr> <expect> [maxiters]");
            std::uint32_t max_iters =
                args.size() == 3
                    ? static_cast<std::uint32_t>(
                          parseNum(args[2], line_no))
                    : 256u;
            need_program(line_no)
                .push_back(gpu::WarpInstr::spinUntil(
                    parseNum(args[0], line_no),
                    static_cast<std::uint32_t>(
                        parseNum(args[1], line_no)),
                    max_iters));
        } else {
            GTSC_FATAL("trace line ", line_no, ": unknown directive '",
                       op, "'");
        }
    }
    if (kernels_.empty())
        GTSC_FATAL("trace contains no kernels/instructions");
    for (std::size_t k = 0; k < kernels_.size(); ++k) {
        if (kernels_[k].programs.empty() && kernels_[k].memInit.empty())
            GTSC_FATAL("trace kernel ", k,
                       ": empty (no warp programs or mem init)");
    }
}

unsigned
TraceFileWorkload::numKernels() const
{
    return static_cast<unsigned>(kernels_.size());
}

void
TraceFileWorkload::initMemory(mem::MainMemory &memory, unsigned kernel)
{
    for (const auto &[addr, value] : kernels_[kernel].memInit)
        memory.writeWord(addr, value);
}

std::unique_ptr<gpu::WarpProgram>
TraceFileWorkload::makeProgram(unsigned kernel, SmId sm, WarpId warp,
                               const gpu::GpuParams &params)
{
    (void)params;
    const auto &programs = kernels_[kernel].programs;
    auto it = programs.find({sm, warp});
    if (it == programs.end()) {
        return std::make_unique<gpu::TraceProgram>(
            std::vector<gpu::WarpInstr>{gpu::WarpInstr::exit()});
    }
    std::vector<gpu::WarpInstr> instrs = it->second;
    instrs.push_back(gpu::WarpInstr::exit());
    return std::make_unique<gpu::TraceProgram>(std::move(instrs));
}

} // namespace gtsc::workloads
