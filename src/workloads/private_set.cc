/**
 * @file
 * The six benchmarks that do not need coherence (paper Section
 * VI-A, Figure 12 right cluster): shared data is read-only after
 * host initialization and all written regions are private to one
 * warp, so they also run correctly on the non-coherent L1 baseline.
 */

#include "workloads/factories.hh"

#include "workloads/common.hh"

namespace gtsc::workloads
{

using gpu::WarpInstr;

namespace
{

Addr
privateTile(SmId sm, WarpId warp, unsigned lines_per_warp)
{
    return kPrivateBase + (std::uint64_t(sm) * 4096 + warp) *
                              lines_per_warp * mem::kLineBytes;
}

/**
 * CCP — compute-bound kernel (e.g. crypto): long arithmetic
 * stretches with a small private footprint. Coherence protocol
 * overheads should vanish here (Figure 12).
 */
class CcpWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "CCP"; }
    bool requiresCoherence() const override { return false; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        Addr tile = privateTile(sm, warp, 8);
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(24);
        for (unsigned i = 0; i < iters; ++i) {
            t.push_back(WarpInstr::compute(120));
            if (i % 4 == 0) {
                t.push_back(WarpInstr::loadStrided(
                    tile + (i / 4 % 8) * mem::kLineBytes,
                    gpu.warpSize));
            }
            if (i % 8 == 7) {
                t.push_back(WarpInstr::storeStrided(
                    tile + (i / 8 % 8) * mem::kLineBytes,
                    gpu.warpSize));
            }
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * GE — Gaussian elimination. Streams a hot read-only pivot row
 * (broadcast reads, high L1 reuse) against private rows written
 * once per iteration.
 */
class GeWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "GE"; }
    bool requiresCoherence() const override { return false; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        (void)kernel;
        for (unsigned w = 0; w < 64 * mem::kWordsPerLine; ++w)
            memory.writeWord(wordAt(kSharedBase, w), 7 * w + 3);
    }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        Addr rows = privateTile(sm, warp, 32);
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(12);
        for (unsigned i = 0; i < iters; ++i) {
            // Pivot row for step i: shared, read-only, hot.
            t.push_back(WarpInstr::loadStrided(
                lineAt(kSharedBase, i % 64), gpu.warpSize));
            t.push_back(WarpInstr::loadStrided(
                rows + (i % 32) * mem::kLineBytes, gpu.warpSize));
            t.push_back(WarpInstr::compute(16));
            t.push_back(WarpInstr::storeStrided(
                rows + (i % 32) * mem::kLineBytes, gpu.warpSize));
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * HS — hotspot stencil over private tiles: very high L1 reuse,
 * write-through traffic only.
 */
class HsWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "HS"; }
    bool requiresCoherence() const override { return false; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        const unsigned tile_lines = 8;
        Addr tile = privateTile(sm, warp, tile_lines);
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(10);
        for (unsigned i = 0; i < iters; ++i) {
            // Read the whole neighbourhood, update one centre line:
            // the real hotspot kernel is strongly load-dominant.
            for (unsigned l = 0; l < tile_lines; ++l) {
                t.push_back(WarpInstr::loadStrided(
                    tile + l * mem::kLineBytes, gpu.warpSize));
            }
            t.push_back(WarpInstr::compute(45));
            t.push_back(WarpInstr::storeStrided(
                tile + (i % tile_lines) * mem::kLineBytes,
                gpu.warpSize));
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * KM — k-means. Small hot read-only centroid table plus streamed
 * private points (cold misses) and write-once assignments; fences
 * delimit iterations.
 */
class KmWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "KM"; }
    bool requiresCoherence() const override { return false; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        (void)kernel;
        for (unsigned w = 0; w < 16 * mem::kWordsPerLine; ++w)
            memory.writeWord(wordAt(kSharedBase, w), 11 * w + 5);
    }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        Addr points = privateTile(sm, warp, 96);
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(8);
        unsigned p = 0;
        for (unsigned i = 0; i < iters; ++i) {
            for (unsigned j = 0; j < 8; ++j, ++p) {
                t.push_back(WarpInstr::loadStrided(
                    points + (p % 96) * mem::kLineBytes,
                    gpu.warpSize));
                t.push_back(WarpInstr::loadStrided(
                    lineAt(kSharedBase, rng.below(16)), gpu.warpSize));
                t.push_back(WarpInstr::compute(24));
            }
            // Assignments are written out once per batch.
            t.push_back(WarpInstr::storeStrided(
                points + (i % 96) * mem::kLineBytes, gpu.warpSize));
            t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * BP — backpropagation. Layered: hot read-only weights, private
 * activations written once per layer, moderate compute.
 */
class BpWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "BP"; }
    bool requiresCoherence() const override { return false; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        (void)kernel;
        for (unsigned w = 0; w < 32 * mem::kWordsPerLine; ++w)
            memory.writeWord(wordAt(kSharedBase, w), 13 * w + 1);
    }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        Addr acts = privateTile(sm, warp, 24);
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(10);
        for (unsigned i = 0; i < iters; ++i) {
            t.push_back(WarpInstr::loadStrided(
                lineAt(kSharedBase, rng.below(32)), gpu.warpSize));
            t.push_back(WarpInstr::loadStrided(
                acts + (i % 12) * mem::kLineBytes, gpu.warpSize));
            t.push_back(WarpInstr::compute(22));
            t.push_back(WarpInstr::storeStrided(
                acts + (12 + i % 12) * mem::kLineBytes, gpu.warpSize));
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * SGM — semi-global stereo matching. Sliding-window reads over a
 * large read-only frame (heavy overlap between iterations, so high
 * L1 reuse) with private cost-volume writes.
 */
class SgmWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "SGM"; }
    bool requiresCoherence() const override { return false; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        (void)kernel;
        for (unsigned w = 0; w < 256 * mem::kWordsPerLine; w += 16)
            memory.writeWord(wordAt(kSharedBase, w), 17 * w + 9);
    }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        Addr costs = privateTile(sm, warp, 20);
        std::uint64_t row =
            (std::uint64_t(sm) * gpu.warpsPerSm + warp) % 192;
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(16);
        for (unsigned i = 0; i < iters; ++i) {
            for (unsigned wnd = 0; wnd < 4; ++wnd) {
                t.push_back(WarpInstr::loadStrided(
                    lineAt(kSharedBase, (row + i + wnd) % 256),
                    gpu.warpSize));
            }
            t.push_back(WarpInstr::compute(28));
            t.push_back(WarpInstr::storeStrided(
                costs + (i % 20) * mem::kLineBytes, gpu.warpSize));
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

} // namespace

std::unique_ptr<gpu::Workload>
makeCcp(const sim::Config &cfg)
{
    return std::make_unique<CcpWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeGe(const sim::Config &cfg)
{
    return std::make_unique<GeWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeHs(const sim::Config &cfg)
{
    return std::make_unique<HsWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeKm(const sim::Config &cfg)
{
    return std::make_unique<KmWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeBp(const sim::Config &cfg)
{
    return std::make_unique<BpWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeSgm(const sim::Config &cfg)
{
    return std::make_unique<SgmWorkload>(cfg);
}

} // namespace gtsc::workloads
