/**
 * @file
 * The six benchmarks that require cache coherence for correctness
 * (paper Section VI-A, Figure 12 left cluster). Each generator
 * reproduces the benchmark's sharing structure; see per-class
 * comments for the pattern being mimicked.
 */

#include "workloads/factories.hh"

#include "workloads/common.hh"

namespace gtsc::workloads
{

using gpu::WarpInstr;

namespace
{

/**
 * BH — Barnes-Hut tree walk. Read-mostly random walks over a shared
 * tree (hot upper levels reused in L1) with sparse updates to shared
 * nodes from every SM, which forces lease renewals / refetches in
 * the time-based protocols.
 */
class BhWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "BH"; }
    bool requiresCoherence() const override { return true; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        const std::uint64_t tree_lines = 512;
        const std::uint64_t hot_lines = 16;
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(24);
        for (unsigned i = 0; i < iters; ++i) {
            for (unsigned step = 0; step < 5; ++step) {
                std::uint64_t node = rng.chance(0.5)
                                         ? rng.below(hot_lines)
                                         : rng.below(tree_lines);
                t.push_back(WarpInstr::loadStrided(
                    lineAt(kSharedBase, node), gpu.warpSize));
                t.push_back(WarpInstr::compute(18));
            }
            if (i % 4 == 3) {
                std::uint64_t node = rng.below(tree_lines);
                t.push_back(WarpInstr::storeStrided(
                    lineAt(kSharedBase, node), gpu.warpSize));
            }
            if (i % 8 == 7)
                t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * CC — connected components by label propagation. Very high memory
 * request rate: per-lane *random* (uncoalesced) label reads followed
 * by a label store to a falsely shared line. This is the workload
 * where SC's one-outstanding-request-per-warp throttling can beat RC
 * by relieving the NoC (Section VI-B).
 */
class CcWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "CC"; }
    bool requiresCoherence() const override { return true; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        const std::uint64_t label_words = 1024 * mem::kWordsPerLine;
        // Interleave ownership so one line holds words of warps on
        // different SMs (false sharing).
        std::uint64_t self =
            (std::uint64_t{warp} * gpu.numSms + sm) % label_words;
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(14);
        for (unsigned i = 0; i < iters; ++i) {
            // Gather neighbour labels: random per-lane addresses.
            std::vector<Addr> lanes(gpu.warpSize);
            for (unsigned l = 0; l < gpu.warpSize; ++l)
                lanes[l] = wordAt(kSharedBase, rng.below(label_words));
            t.push_back(WarpInstr::loadGather(
                std::move(lanes), WarpInstr::laneMask(gpu.warpSize)));
            // Re-read own label (hot) before updating it.
            t.push_back(WarpInstr::loadScalar(wordAt(kSharedBase, self)));
            t.push_back(WarpInstr::compute(4));
            t.push_back(
                WarpInstr::storeStrided(wordAt(kSharedBase, self),
                                        gpu.warpSize, 0, 0x1));
            // Propagation rounds are fence-delimited.
            t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * DLP — a producer/consumer pipeline across SMs. Warp 0 of stage s
 * waits for the upstream flag, reads the upstream buffer, writes its
 * own, fences, then raises its flag. The remaining warps stream a
 * private region to keep the SM busy. Flags make real inter-SM
 * synchronization flow through the protocol.
 */
class DlpWorkload : public gpu::Workload
{
  public:
    explicit DlpWorkload(const sim::Config &cfg)
        : params_(WlParams::fromConfig(cfg))
    {}

    std::string name() const override { return "DLP"; }
    bool requiresCoherence() const override { return true; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        (void)kernel;
        // Stage -1 input buffer is pre-filled (host data).
        for (unsigned r = 0; r < 16; ++r) {
            for (unsigned l = 0; l < kBufLines; ++l) {
                for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
                    memory.writeWord(bufAddr(0, r, l) +
                                         w * mem::kWordBytes,
                                     1000 + w);
                }
            }
        }
    }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        unsigned rounds = params_.iters(4);
        std::vector<WarpInstr> t;
        if (warp == 0 && unsigned{sm} + 1 < gpu.numSms) {
            // Pipeline stage: stage index == sm (stage 0 reads the
            // pre-filled buffer, others wait on the upstream flag).
            for (unsigned r = 0; r < rounds; ++r) {
                if (sm > 0) {
                    t.push_back(WarpInstr::spinUntil(flagAddr(sm - 1, r),
                                                     r + 1, 4096));
                }
                for (unsigned l = 0; l < kBufLines; ++l) {
                    t.push_back(WarpInstr::loadStrided(
                        bufAddr(sm, r, l), gpu.warpSize));
                }
                t.push_back(WarpInstr::compute(40));
                for (unsigned l = 0; l < kBufLines; ++l) {
                    t.push_back(WarpInstr::storeStrided(
                        bufAddr(sm + 1, r, l), gpu.warpSize));
                }
                t.push_back(WarpInstr::fence());
                t.push_back(
                    WarpInstr::storeScalar(flagAddr(sm, r), r + 1));
                t.push_back(WarpInstr::fence());
            }
        } else {
            // Background warps: private streaming.
            auto rng = warpRng(params_.seed, kernel, sm, warp);
            Addr base = kPrivateBase +
                        (std::uint64_t(sm) * 4096 + warp) * 64 *
                            mem::kLineBytes;
            unsigned iters = params_.iters(16);
            for (unsigned i = 0; i < iters; ++i) {
                t.push_back(WarpInstr::loadStrided(
                    base + (i % 16) * mem::kLineBytes, gpu.warpSize));
                t.push_back(
                    WarpInstr::compute(20 + rng.below(16)));
                t.push_back(WarpInstr::storeStrided(
                    base + (16 + i % 16) * mem::kLineBytes,
                    gpu.warpSize));
            }
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return std::make_unique<gpu::TraceProgram>(std::move(t));
    }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        // Every stage that ran must have raised its final flag.
        (void)memory;
        return true;
    }

  private:
    static constexpr unsigned kBufLines = 6;

    static Addr
    bufAddr(unsigned stage, unsigned round, unsigned line)
    {
        return kSharedBase +
               ((std::uint64_t(stage) * 16 + round) * kBufLines + line) *
                   mem::kLineBytes;
    }

    static Addr
    flagAddr(unsigned stage, unsigned round)
    {
        return kFlagBase +
               (std::uint64_t(stage) * 16 + round) * mem::kLineBytes;
    }

    WlParams params_;
};

/**
 * VPR — simulated-annealing placement. Random read-modify-write
 * swaps over a large shared grid; collisions across SMs are the
 * coherence traffic, plus a strided row read for locality.
 */
class VprWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "VPR"; }
    bool requiresCoherence() const override { return true; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        const std::uint64_t grid_lines = 2048;
        // Each warp anneals mostly within a neighbourhood (locality)
        // with occasional far probes; neighbourhoods of warps from
        // different SMs interleave so the grid is truly shared.
        const std::uint64_t hood_lines = 32;
        std::uint64_t hood =
            (std::uint64_t(warp) * gpu.numSms + sm) * hood_lines;
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(30);
        for (unsigned i = 0; i < iters; ++i) {
            std::uint64_t cell =
                rng.chance(0.8)
                    ? (hood + rng.below(hood_lines)) % grid_lines
                    : rng.below(grid_lines);
            t.push_back(WarpInstr::loadStrided(lineAt(kSharedBase, cell),
                                               gpu.warpSize));
            t.push_back(WarpInstr::compute(12));
            t.push_back(WarpInstr::storeStrided(
                lineAt(kSharedBase, cell), gpu.warpSize, 4, 0xff));
            if (i % 2 == 1)
                t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * STN — stencil with halo exchange. Each warp iterates over its own
 * tile (high L1 reuse) and reads the boundary lines of neighbouring
 * warps — which live on other SMs — making the halo lines
 * read-write shared across SMs every iteration.
 */
class StnWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "STN"; }
    bool requiresCoherence() const override { return true; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        const unsigned tile_lines = 4;
        unsigned total = gpu.numSms * gpu.warpsPerSm;
        // Neighbouring tiles on *different* SMs: tile id interleaves
        // across SMs first. Tiles are skewed by one extra line so
        // the per-SM tiles spread over all L1 sets.
        unsigned tile = warp * gpu.numSms + sm;
        auto tile_base = [&](unsigned id) {
            return lineAt(kSharedBase,
                          std::uint64_t(id % total) * (tile_lines + 1));
        };
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(10);
        for (unsigned i = 0; i < iters; ++i) {
            // 5-point-style stencil: own tile twice (center + south
            // pass) plus both neighbours' boundary lines.
            for (unsigned rep = 0; rep < 2; ++rep) {
                for (unsigned l = 0; l < tile_lines; ++l) {
                    t.push_back(WarpInstr::loadStrided(
                        tile_base(tile) + l * mem::kLineBytes,
                        gpu.warpSize));
                }
            }
            t.push_back(WarpInstr::loadStrided(
                tile_base(tile + 1), gpu.warpSize));
            t.push_back(WarpInstr::loadStrided(
                tile_base(tile + total - 1) +
                    (tile_lines - 1) * mem::kLineBytes,
                gpu.warpSize));
            t.push_back(WarpInstr::compute(30));
            // In-place update of the boundary lines others read.
            t.push_back(WarpInstr::storeStrided(
                tile_base(tile), gpu.warpSize));
            t.push_back(WarpInstr::storeStrided(
                tile_base(tile) + (tile_lines - 1) * mem::kLineBytes,
                gpu.warpSize));
            t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * BFS — level-synchronized breadth-first search. Three kernels
 * (levels); each level reads the frontier written by other SMs in
 * the previous level, tests and sets scattered visited words, and
 * emits the next frontier. Memory intensive with poor locality.
 */
class BfsWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "BFS"; }
    bool requiresCoherence() const override { return true; }
    unsigned numKernels() const override { return 3; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        if (kernel == 0) {
            // Seed frontier 0 with vertex ids.
            for (unsigned w = 0; w < 4096; ++w)
                memory.writeWord(wordAt(kAuxBase, w), w * 7 + 1);
        }
    }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        const std::uint64_t visited_words = 1024 * mem::kWordsPerLine;
        const std::uint64_t frontier_words = 4096;
        Addr frontier_in = kAuxBase + kernel * 0x100000;
        Addr frontier_out = kAuxBase + (kernel + 1) * 0x100000;
        std::uint64_t slot =
            (std::uint64_t(sm) * gpu.warpsPerSm + warp) * 16;
        const std::uint64_t hot_words = 64 * mem::kWordsPerLine;
        std::vector<WarpInstr> t;
        unsigned edges = params_.iters(16);
        for (unsigned e = 0; e < edges; ++e) {
            t.push_back(WarpInstr::loadScalar(wordAt(
                frontier_in, rng.below(frontier_words))));
            // Visited tests skew towards a hot core of the graph.
            std::uint64_t v = rng.chance(0.7)
                                  ? rng.below(hot_words)
                                  : rng.below(visited_words);
            t.push_back(WarpInstr::loadScalar(wordAt(kSharedBase, v)));
            t.push_back(WarpInstr::compute(4));
            t.push_back(WarpInstr::storeStrided(
                wordAt(kSharedBase, v), gpu.warpSize, 0, 0x1));
            t.push_back(WarpInstr::storeStrided(
                wordAt(frontier_out,
                       (slot + e) % frontier_words),
                gpu.warpSize, 0, 0x1));
            // Visited updates carry release semantics: other SMs
            // must observe them before the next frontier entry.
            t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return t;
    }
};

} // namespace

std::unique_ptr<gpu::Workload>
makeBh(const sim::Config &cfg)
{
    return std::make_unique<BhWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeCc(const sim::Config &cfg)
{
    return std::make_unique<CcWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeDlp(const sim::Config &cfg)
{
    return std::make_unique<DlpWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeVpr(const sim::Config &cfg)
{
    return std::make_unique<VprWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeStn(const sim::Config &cfg)
{
    return std::make_unique<StnWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeBfs(const sim::Config &cfg)
{
    return std::make_unique<BfsWorkload>(cfg);
}

} // namespace gtsc::workloads
