/**
 * @file
 * Internal per-benchmark factory functions (used by the registry).
 */

#ifndef GTSC_WORKLOADS_FACTORIES_HH_
#define GTSC_WORKLOADS_FACTORIES_HH_

#include <memory>

#include "gpu/kernel.hh"
#include "sim/config.hh"

namespace gtsc::workloads
{

// coherence-required set
std::unique_ptr<gpu::Workload> makeBh(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeCc(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeDlp(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeVpr(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeStn(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeBfs(const sim::Config &cfg);

// no-coherence set
std::unique_ptr<gpu::Workload> makeCcp(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeGe(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeHs(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeKm(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeBp(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeSgm(const sim::Config &cfg);

// testing kernels
std::unique_ptr<gpu::Workload> makeMp(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeSb(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeStress(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makePingPong(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeCorr(const sim::Config &cfg);
std::unique_ptr<gpu::Workload> makeIriw(const sim::Config &cfg);

// generated litmus programs (litmus_program.hh)
std::unique_ptr<gpu::Workload> makeLitmusGen(const sim::Config &cfg);

} // namespace gtsc::workloads

#endif // GTSC_WORKLOADS_FACTORIES_HH_
