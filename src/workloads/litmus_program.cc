/**
 * @file
 * LitmusSpec parsing/formatting and the interpreter workload that
 * executes a spec (see litmus_program.hh for the grammar).
 */

#include "workloads/litmus_program.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/log.hh"
#include "workloads/common.hh"

namespace gtsc::workloads
{

namespace
{

/** Split `s` on `sep` (no empty-field suppression). */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true)
    {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos)
        {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

/** Parse an unsigned decimal; false on empty/trailing garbage. */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end == s.c_str() + s.size();
}

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

/** Parse one op token (`W0=1`, `R1:r0`, `F`, `D20`). */
bool
parseOp(const std::string &tok, LitmusSpec::Op &op, std::string *err)
{
    std::uint64_t v = 0;
    if (tok == "F")
    {
        op.kind = LitmusSpec::Op::Kind::Fence;
        return true;
    }
    if (tok.size() >= 2 && tok[0] == 'D')
    {
        if (!parseU64(tok.substr(1), v) || v > 0xffff)
            return fail(err, "bad delay op '" + tok + "'");
        op.kind = LitmusSpec::Op::Kind::Delay;
        op.cycles = static_cast<std::uint16_t>(v);
        return true;
    }
    if (tok.size() >= 2 && tok[0] == 'W')
    {
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            return fail(err, "bad store op '" + tok + "'");
        std::uint64_t loc = 0;
        if (!parseU64(tok.substr(1, eq - 1), loc) || loc > 0xff ||
            !parseU64(tok.substr(eq + 1), v) || v > 0xffffffffULL)
            return fail(err, "bad store op '" + tok + "'");
        op.kind = LitmusSpec::Op::Kind::Store;
        op.loc = static_cast<std::uint8_t>(loc);
        op.value = static_cast<std::uint32_t>(v);
        return true;
    }
    if (tok.size() >= 2 && tok[0] == 'R')
    {
        std::size_t colon = tok.find(":r");
        if (colon == std::string::npos)
            return fail(err, "bad load op '" + tok + "'");
        std::uint64_t loc = 0;
        if (!parseU64(tok.substr(1, colon - 1), loc) || loc > 0xff ||
            !parseU64(tok.substr(colon + 2), v) || v >= kLitmusMaxRegs)
            return fail(err, "bad load op '" + tok + "'");
        op.kind = LitmusSpec::Op::Kind::Load;
        op.loc = static_cast<std::uint8_t>(loc);
        op.reg = static_cast<std::uint8_t>(v);
        return true;
    }
    return fail(err, "unknown op '" + tok + "'");
}

/** Parse one forbid term (`t1.r0=1`). */
bool
parseTerm(const std::string &tok, LitmusSpec::Term &term, std::string *err)
{
    std::size_t dot = tok.find(".r");
    std::size_t eq = tok.find('=');
    std::uint64_t t = 0, r = 0, v = 0;
    if (tok.size() < 6 || tok[0] != 't' || dot == std::string::npos ||
        eq == std::string::npos || eq < dot ||
        !parseU64(tok.substr(1, dot - 1), t) || t > 0xff ||
        !parseU64(tok.substr(dot + 2, eq - dot - 2), r) ||
        r >= kLitmusMaxRegs || !parseU64(tok.substr(eq + 1), v) ||
        v > 0xffffffffULL)
        return fail(err, "bad forbid term '" + tok + "'");
    term.thread = static_cast<std::uint8_t>(t);
    term.reg = static_cast<std::uint8_t>(r);
    term.value = static_cast<std::uint32_t>(v);
    return true;
}

} // namespace

Addr
LitmusSpec::locAddr(unsigned loc) const
{
    GTSC_ASSERT(loc < locs.size(), "litmus loc index out of range");
    return lineAt(kSharedBase, locs[loc].line) +
           locs[loc].word * mem::kWordBytes;
}

Addr
LitmusSpec::resultAddr(unsigned thread, unsigned reg)
{
    return kResultBase +
           (Addr{thread} * kLitmusMaxRegs + reg) * mem::kWordBytes;
}

std::vector<std::uint8_t>
LitmusSpec::usedRegs(unsigned thread) const
{
    std::vector<std::uint8_t> regs;
    for (const Op &op : threads[thread])
        if (op.kind == Op::Kind::Load)
            regs.push_back(op.reg);
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
    return regs;
}

std::string
LitmusSpec::format() const
{
    std::string s = "v1;shape=" + shape + ";seed=" + std::to_string(seed);
    if (scOnly)
        s += ";sc_only=1";
    s += ";locs=";
    for (std::size_t i = 0; i < locs.size(); ++i)
    {
        if (i)
            s += ',';
        s += std::to_string(locs[i].line) + "." + std::to_string(locs[i].word);
    }
    for (const auto &ops : threads)
    {
        s += ";t=";
        for (std::size_t i = 0; i < ops.size(); ++i)
        {
            if (i)
                s += ',';
            const Op &op = ops[i];
            switch (op.kind)
            {
            case Op::Kind::Store:
                s += "W" + std::to_string(op.loc) + "=" +
                     std::to_string(op.value);
                break;
            case Op::Kind::Load:
                s += "R" + std::to_string(op.loc) + ":r" +
                     std::to_string(op.reg);
                break;
            case Op::Kind::Fence:
                s += "F";
                break;
            case Op::Kind::Delay:
                s += "D" + std::to_string(op.cycles);
                break;
            }
        }
    }
    if (!forbid.empty())
    {
        s += ";forbid=";
        for (std::size_t c = 0; c < forbid.size(); ++c)
        {
            if (c)
                s += '|';
            for (std::size_t t = 0; t < forbid[c].size(); ++t)
            {
                if (t)
                    s += '&';
                const Term &term = forbid[c][t];
                s += "t" + std::to_string(term.thread) + ".r" +
                     std::to_string(term.reg) + "=" +
                     std::to_string(term.value);
            }
        }
    }
    return s;
}

bool
LitmusSpec::parse(const std::string &s, LitmusSpec &out, std::string *err)
{
    out = LitmusSpec{};
    out.shape = "custom";
    std::vector<std::string> fields = split(s, ';');
    if (fields.empty() || fields[0] != "v1")
        return fail(err, "litmus spec must start with 'v1'");
    for (std::size_t f = 1; f < fields.size(); ++f)
    {
        const std::string &field = fields[f];
        std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            return fail(err, "field without '=': '" + field + "'");
        std::string key = field.substr(0, eq);
        std::string value = field.substr(eq + 1);
        std::uint64_t v = 0;
        if (key == "shape")
        {
            out.shape = value;
        }
        else if (key == "seed")
        {
            if (!parseU64(value, v))
                return fail(err, "bad seed '" + value + "'");
            out.seed = v;
        }
        else if (key == "sc_only")
        {
            out.scOnly = (value == "1");
        }
        else if (key == "locs")
        {
            for (const std::string &tok : split(value, ','))
            {
                std::size_t dot = tok.find('.');
                std::uint64_t line = 0, word = 0;
                if (dot == std::string::npos ||
                    !parseU64(tok.substr(0, dot), line) || line > 0xff ||
                    !parseU64(tok.substr(dot + 1), word) ||
                    word >= mem::kLineBytes / mem::kWordBytes)
                    return fail(err, "bad loc '" + tok + "'");
                out.locs.push_back(Loc{static_cast<std::uint8_t>(line),
                                       static_cast<std::uint8_t>(word)});
            }
        }
        else if (key == "t")
        {
            std::vector<Op> ops;
            if (!value.empty())
                for (const std::string &tok : split(value, ','))
                {
                    Op op;
                    if (!parseOp(tok, op, err))
                        return false;
                    ops.push_back(op);
                }
            out.threads.push_back(std::move(ops));
        }
        else if (key == "forbid")
        {
            for (const std::string &clause : split(value, '|'))
            {
                std::vector<Term> terms;
                for (const std::string &tok : split(clause, '&'))
                {
                    Term term;
                    if (!parseTerm(tok, term, err))
                        return false;
                    terms.push_back(term);
                }
                out.forbid.push_back(std::move(terms));
            }
        }
        else
        {
            return fail(err, "unknown field '" + key + "'");
        }
    }
    if (out.threads.empty())
        return fail(err, "litmus spec has no threads");
    for (const auto &ops : out.threads)
        for (const Op &op : ops)
            if ((op.kind == Op::Kind::Store || op.kind == Op::Kind::Load) &&
                op.loc >= out.locs.size())
                return fail(err, "op references loc out of range");
    for (const auto &clause : out.forbid)
        for (const Term &term : clause)
            if (term.thread >= out.threads.size())
                return fail(err, "forbid term references missing thread");
    return true;
}

namespace
{

/**
 * Interprets one litmus thread: runs the spec's ops, then stores each
 * loaded register to its result slot, fences and exits. The result
 * stores are what verify() and the forbidden-outcome oracle read.
 */
class LitmusThreadProgram final : public gpu::WarpProgram
{
  public:
    LitmusThreadProgram(const LitmusSpec &spec, unsigned thread)
        : spec_(spec), thread_(thread), resultRegs_(spec.usedRegs(thread))
    {}

    gpu::WarpInstr
    next() override
    {
        if (pendingReg_ >= 0)
        {
            regs_[pendingReg_] = observed_;
            pendingReg_ = -1;
        }
        const auto &ops = spec_.threads[thread_];
        if (pos_ < ops.size())
        {
            const LitmusSpec::Op &op = ops[pos_++];
            switch (op.kind)
            {
            case LitmusSpec::Op::Kind::Store:
                return gpu::WarpInstr::storeScalar(spec_.locAddr(op.loc),
                                                   op.value);
            case LitmusSpec::Op::Kind::Load:
                pendingReg_ = op.reg;
                return gpu::WarpInstr::loadScalar(spec_.locAddr(op.loc));
            case LitmusSpec::Op::Kind::Fence:
                return gpu::WarpInstr::fence();
            case LitmusSpec::Op::Kind::Delay:
                return gpu::WarpInstr::compute(op.cycles);
            }
        }
        if (resultPos_ < resultRegs_.size())
        {
            std::uint8_t reg = resultRegs_[resultPos_++];
            return gpu::WarpInstr::storeScalar(
                LitmusSpec::resultAddr(thread_, reg), regs_[reg]);
        }
        if (!finalFence_)
        {
            finalFence_ = true;
            return gpu::WarpInstr::fence();
        }
        return gpu::WarpInstr::exit();
    }

    void observe(std::uint32_t value) override { observed_ = value; }

  private:
    const LitmusSpec &spec_;
    unsigned thread_;
    std::vector<std::uint8_t> resultRegs_;
    std::size_t pos_ = 0;
    std::size_t resultPos_ = 0;
    bool finalFence_ = false;
    int pendingReg_ = -1;
    std::uint32_t observed_ = 0;
    std::uint32_t regs_[kLitmusMaxRegs] = {};
};

class LitmusWorkload final : public gpu::Workload
{
  public:
    explicit LitmusWorkload(LitmusSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return "litmusgen:" + spec_.shape; }

    bool requiresCoherence() const override { return true; }

    void
    initMemory(mem::MainMemory &memory, unsigned) override
    {
        for (unsigned loc = 0; loc < spec_.locs.size(); ++loc)
            memory.writeWord(spec_.locAddr(loc), 0);
        for (unsigned t = 0; t < spec_.threads.size(); ++t)
            for (std::uint8_t reg : spec_.usedRegs(t))
                memory.writeWord(LitmusSpec::resultAddr(t, reg),
                                 kLitmusUnwritten);
    }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned, SmId sm, WarpId warp,
                const gpu::GpuParams &params) override
    {
        if (params.numSms < spec_.threads.size())
            GTSC_FATAL("litmus spec needs ", spec_.threads.size(),
                       " SMs but gpu.num_sms=", params.numSms);
        if (warp != 0 || sm >= spec_.threads.size())
            return std::make_unique<gpu::TraceProgram>(
                std::vector<gpu::WarpInstr>{});
        return std::make_unique<LitmusThreadProgram>(spec_, sm);
    }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        // Every thread must have completed (written its result slots)
        for (unsigned t = 0; t < spec_.threads.size(); ++t)
            for (std::uint8_t reg : spec_.usedRegs(t))
                if (memory.readWord(LitmusSpec::resultAddr(t, reg)) ==
                    kLitmusUnwritten)
                    return false;
        return !forbiddenOutcome(memory);
    }

    /** True if any forbid clause is fully satisfied by the results. */
    bool
    forbiddenOutcome(const mem::MainMemory &memory) const
    {
        for (const auto &clause : spec_.forbid)
        {
            bool all = !clause.empty();
            for (const LitmusSpec::Term &term : clause)
                if (memory.readWord(LitmusSpec::resultAddr(
                        term.thread, term.reg)) != term.value)
                {
                    all = false;
                    break;
                }
            if (all)
                return true;
        }
        return false;
    }

    const LitmusSpec &spec() const { return spec_; }

  private:
    LitmusSpec spec_;
};

} // namespace

std::unique_ptr<gpu::Workload>
makeLitmusWorkload(LitmusSpec spec)
{
    return std::make_unique<LitmusWorkload>(std::move(spec));
}

std::unique_ptr<gpu::Workload>
makeLitmusGen(const sim::Config &cfg)
{
    std::string text = cfg.getString("verify.litmus_spec", "");
    if (text.empty())
        GTSC_FATAL("workload 'litmusgen' requires verify.litmus_spec");
    LitmusSpec spec;
    std::string err;
    if (!LitmusSpec::parse(text, spec, &err))
        GTSC_FATAL("bad verify.litmus_spec: ", err, " in '", text, "'");
    return makeLitmusWorkload(std::move(spec));
}

} // namespace gtsc::workloads
