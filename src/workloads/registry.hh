/**
 * @file
 * Name-based workload registry.
 *
 * Benchmarks (paper Section VI-A):
 *   coherence-required set: bh cc dlp vpr stn bfs
 *   no-coherence set:       ccp ge hs km bp sgm
 * Extra kernels for testing:
 *   mp (message passing litmus), sb (store buffering litmus),
 *   stress (randomized sharing stress), pingpong (two-SM example of
 *   Figure 9).
 */

#ifndef GTSC_WORKLOADS_REGISTRY_HH_
#define GTSC_WORKLOADS_REGISTRY_HH_

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/config.hh"

namespace gtsc::workloads
{

/** Instantiate a workload by name; fatal on unknown names. */
std::unique_ptr<gpu::Workload> makeWorkload(const std::string &name,
                                            const sim::Config &cfg);

/** The six benchmarks that require coherence (Figure 12, left). */
const std::vector<std::string> &coherentSet();

/** The six benchmarks that do not (Figure 12, right). */
const std::vector<std::string> &privateSet();

/** All twelve paper benchmarks, coherent set first. */
std::vector<std::string> allBenchmarks();

} // namespace gtsc::workloads

#endif // GTSC_WORKLOADS_REGISTRY_HH_
