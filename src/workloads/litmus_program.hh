/**
 * @file
 * Generated litmus programs: a tiny declarative spec for classic
 * consistency litmus shapes (message passing, store buffering, load
 * buffering, coRR/coWW, IRIW and randomized mixes) compiled into
 * workload programs the harness can run like any other benchmark.
 *
 * The spec round-trips through a compact single-line string so a
 * failing test is fully reproducible from a CI log: the verification
 * lab prints `spec.format()` plus the generator seed, and
 * `gtsc_verify --litmus-replay '<spec>'` (or the "litmusgen"
 * workload with verify.litmus_spec set) re-executes it exactly.
 *
 * Grammar (fields ';'-separated, threads in order of appearance):
 *
 *   v1;shape=mp;seed=42;sc_only=1;locs=0.0,1.0;
 *     t=W0=1,F,W1=1;t=R1:r0,F,R0:r1;forbid=t1.r0=1&t1.r1=0
 *
 *   locs    loc K is `<line>.<word>` of the shared region
 *   ops     W<loc>=<val> | R<loc>:r<reg> | F (fence) | D<cycles>
 *   forbid  '|'-separated clauses of '&'-separated `t<i>.r<k>=<val>`
 *           terms; the outcome is forbidden if ANY clause holds
 *   sc_only the spec relies on SC ordering (fences removed); run it
 *           only under sequential consistency
 */

#ifndef GTSC_WORKLOADS_LITMUS_PROGRAM_HH_
#define GTSC_WORKLOADS_LITMUS_PROGRAM_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace gtsc::workloads
{

/** Result slots per thread (register file size of a litmus thread). */
inline constexpr unsigned kLitmusMaxRegs = 8;

/** Result-slot value meaning "this register was never written back"
 *  (thread did not complete). */
inline constexpr std::uint32_t kLitmusUnwritten = 0xdeadbeefu;

struct LitmusSpec
{
    struct Loc
    {
        std::uint8_t line = 0; ///< line index within the shared region
        std::uint8_t word = 0; ///< word index within the line
    };

    struct Op
    {
        enum class Kind : std::uint8_t
        {
            Store,
            Load,
            Fence,
            Delay,
        };
        Kind kind = Kind::Fence;
        std::uint8_t loc = 0;       ///< index into locs (Store/Load)
        std::uint32_t value = 0;    ///< Store payload
        std::uint8_t reg = 0;       ///< Load destination register
        std::uint16_t cycles = 0;   ///< Delay length
    };

    /** One conjunct of a forbidden outcome. */
    struct Term
    {
        std::uint8_t thread = 0;
        std::uint8_t reg = 0;
        std::uint32_t value = 0;
    };

    std::string shape = "custom";
    std::uint64_t seed = 0; ///< generator seed (reproducibility)
    bool scOnly = false;
    std::vector<Loc> locs;
    std::vector<std::vector<Op>> threads;
    /** Outcome forbidden iff any clause (conjunction) is satisfied. */
    std::vector<std::vector<Term>> forbid;

    /** Byte address of location `loc` in the shared region. */
    Addr locAddr(unsigned loc) const;

    /** Byte address of thread `t`'s result slot for register `reg`. */
    static Addr resultAddr(unsigned thread, unsigned reg);

    /** Registers thread `t` loads into, ascending, deduplicated. */
    std::vector<std::uint8_t> usedRegs(unsigned thread) const;

    /** Single-line canonical form (see file comment). */
    std::string format() const;

    /** Parse `format()` output; false (and *err) on malformed input. */
    static bool parse(const std::string &s, LitmusSpec &out,
                      std::string *err = nullptr);
};

/**
 * Workload factory for a parsed spec. The machine must have at least
 * `spec.threads.size()` SMs; thread i runs on (sm=i, warp=0), every
 * other warp exits immediately.
 */
std::unique_ptr<gpu::Workload> makeLitmusWorkload(LitmusSpec spec);

/** Registry factory: parses cfg "verify.litmus_spec" (fatal if
 *  missing/malformed). Registered as workload name "litmusgen". */
std::unique_ptr<gpu::Workload> makeLitmusGen(const sim::Config &cfg);

} // namespace gtsc::workloads

#endif // GTSC_WORKLOADS_LITMUS_PROGRAM_HH_
