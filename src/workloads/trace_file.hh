/**
 * @file
 * Trace-file workload: run instruction streams parsed from a plain
 * text file instead of a built-in generator, so users can replay
 * their own memory traces through any protocol.
 *
 * Format (one directive per line, '#' comments):
 *
 *   kernel <n>              start the instruction lists of kernel n
 *   mem <hexaddr> <value>   initialize a memory word before launch
 *   warp <sm> <warp>        following instructions belong to this warp
 *   ld <hexaddr> [mask]     load (lane-strided from addr, hex mask)
 *   st <hexaddr> <value>|auto [mask]   store
 *   cmp <cycles>            compute
 *   fence                   memory fence
 *   spin <hexaddr> <expect> [maxiters] spin-load until >= expect
 *
 * Warps not mentioned exit immediately. Select with the registry
 * name "trace:<path>".
 */

#ifndef GTSC_WORKLOADS_TRACE_FILE_HH_
#define GTSC_WORKLOADS_TRACE_FILE_HH_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"

namespace gtsc::workloads
{

class TraceFileWorkload : public gpu::Workload
{
  public:
    /** Parse the trace; fatal on syntax errors (with line numbers). */
    explicit TraceFileWorkload(const std::string &path);

    /** Parse from an already-loaded string (tests). */
    static std::unique_ptr<TraceFileWorkload>
    fromString(const std::string &text, const std::string &name);

    std::string name() const override { return name_; }
    bool requiresCoherence() const override { return true; }
    unsigned numKernels() const override;

    void initMemory(mem::MainMemory &memory, unsigned kernel) override;

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &params) override;

  private:
    TraceFileWorkload() = default;

    void parse(const std::string &text);

    struct KernelTrace
    {
        std::vector<std::pair<Addr, std::uint32_t>> memInit;
        std::map<std::pair<unsigned, unsigned>,
                 std::vector<gpu::WarpInstr>>
            programs;
    };

    std::string name_ = "TRACE";
    std::vector<KernelTrace> kernels_;
};

} // namespace gtsc::workloads

#endif // GTSC_WORKLOADS_TRACE_FILE_HH_
