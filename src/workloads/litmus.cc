/**
 * @file
 * Litmus and stress kernels used by the test suite.
 *
 *  - mp: message passing. Producer (SM0/warp0) writes data, fences,
 *    raises a flag; consumer (SM1/warp0) spins on the flag and then
 *    reads the data, recording what it saw. With a correct protocol
 *    and fences the consumer must observe the data (never the stale
 *    initial value once the flag is seen).
 *  - sb: store buffering. Two warps store to X/Y then load the other
 *    and record the result; SC forbids both observing the initial
 *    value... under the *logical* order. The recorded outcomes are
 *    inspected by tests.
 *  - stress: randomized mixed sharing traffic to drive the coherence
 *    checker through every protocol corner.
 *  - pingpong: the two-SM example of Figure 9 (read X / write Y /
 *    read X vs read Y / write X / read Y).
 */

#include "workloads/factories.hh"

#include "workloads/common.hh"

namespace gtsc::workloads
{

using gpu::WarpInstr;

namespace
{

constexpr Addr kX = kSharedBase;
constexpr Addr kY = kSharedBase + mem::kLineBytes;
constexpr Addr kFlag = kFlagBase;

/**
 * Message-passing litmus. Result words (per observer pair):
 * kResultBase[pair] = data value observed after the flag was seen
 * (0xdead if the spin gave up).
 */
class MpWorkload : public gpu::Workload
{
  public:
    explicit MpWorkload(const sim::Config &cfg)
        : params_(WlParams::fromConfig(cfg))
    {}

    std::string name() const override { return "MP"; }
    bool requiresCoherence() const override { return true; }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        (void)gpu;
        if (warp != 0 || sm > 1)
            return std::make_unique<gpu::TraceProgram>(
                std::vector<WarpInstr>{WarpInstr::exit()});
        if (sm == 0) {
            std::vector<WarpInstr> t;
            t.push_back(WarpInstr::compute(50));
            t.push_back(WarpInstr::storeScalar(kX, 42));
            t.push_back(WarpInstr::fence());
            t.push_back(WarpInstr::storeScalar(kFlag, 1));
            t.push_back(WarpInstr::fence());
            t.push_back(WarpInstr::exit());
            return std::make_unique<gpu::TraceProgram>(std::move(t));
        }
        return std::make_unique<Consumer>();
    }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        // The consumer either observed the flag and then must have
        // read 42, or gave up (0xdead) which tests treat as failure
        // separately.
        return memory.readWord(kResultBase) == 42;
    }

  private:
    class Consumer : public gpu::WarpProgram
    {
      public:
        WarpInstr
        next() override
        {
            switch (step_++) {
              case 0:
                return WarpInstr::spinUntil(kFlag, 1, 4096);
              case 1:
                sawFlag_ = (last_ >= 1);
                return WarpInstr::loadScalar(kX);
              case 2:
                return WarpInstr::storeScalar(
                    kResultBase, sawFlag_ ? last_ : 0xdead);
              case 3:
                return WarpInstr::fence();
              default:
                return WarpInstr::exit();
            }
        }

        void observe(std::uint32_t v) override { last_ = v; }

      private:
        unsigned step_ = 0;
        std::uint32_t last_ = 0;
        bool sawFlag_ = false;
    };

    WlParams params_;
};

/**
 * Store-buffering litmus: warp A stores X=1 then loads Y; warp B
 * stores Y=1 then loads X. Results are recorded to kResultBase[0/1].
 */
class SbWorkload : public gpu::Workload
{
  public:
    explicit SbWorkload(const sim::Config &cfg) { (void)cfg; }

    std::string name() const override { return "SB"; }
    bool requiresCoherence() const override { return true; }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        // With a fence between each thread's store and load, both
        // threads observing the initial value (0, 0) is forbidden.
        std::uint32_t r0 = memory.readWord(kResultBase + 64);
        std::uint32_t r1 =
            memory.readWord(kResultBase + 64 + mem::kWordBytes);
        return !(r0 == 0 && r1 == 0);
    }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        (void)gpu;
        if (warp != 0 || sm > 1)
            return std::make_unique<gpu::TraceProgram>(
                std::vector<WarpInstr>{WarpInstr::exit()});
        return std::make_unique<Thread>(sm);
    }

  private:
    class Thread : public gpu::WarpProgram
    {
      public:
        explicit Thread(SmId sm) : sm_(sm) {}

        WarpInstr
        next() override
        {
            Addr mine = (sm_ == 0) ? kX : kY;
            Addr other = (sm_ == 0) ? kY : kX;
            switch (step_++) {
              case 0:
                return WarpInstr::storeScalar(mine, 1);
              case 1:
                return WarpInstr::fence();
              case 2:
                return WarpInstr::loadScalar(other);
              case 3:
                return WarpInstr::storeScalar(
                    kResultBase + 64 + sm_ * mem::kWordBytes, last_);
              case 4:
                return WarpInstr::fence();
              default:
                return WarpInstr::exit();
            }
        }

        void observe(std::uint32_t v) override { last_ = v; }

      private:
        SmId sm_;
        unsigned step_ = 0;
        std::uint32_t last_ = 0;
    };
};

/**
 * Randomized coherence stress: every warp mixes scalar and strided
 * loads/stores over a small hot shared region, a larger cold shared
 * region and a private tile, with random fences — maximizing
 * protocol corner coverage under the runtime checker.
 */
class StressWorkload : public TraceWorkload
{
  public:
    using TraceWorkload::TraceWorkload;
    std::string name() const override { return "STRESS"; }
    bool requiresCoherence() const override { return true; }

  protected:
    std::vector<WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) override
    {
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        const std::uint64_t hot_lines = 4;
        const std::uint64_t cold_lines = 128;
        Addr priv = kPrivateBase + (std::uint64_t(sm) * 4096 + warp) *
                                       8 * mem::kLineBytes;
        std::vector<WarpInstr> t;
        unsigned iters = params_.iters(40);
        for (unsigned i = 0; i < iters; ++i) {
            double roll = rng.uniform();
            Addr line;
            if (roll < 0.5)
                line = lineAt(kSharedBase, rng.below(hot_lines));
            else if (roll < 0.8)
                line = lineAt(kSharedBase + 0x10000,
                              rng.below(cold_lines));
            else
                line = priv + rng.below(8) * mem::kLineBytes;

            if (rng.chance(0.35)) {
                // Store: scalar or partial-line.
                if (rng.chance(0.5)) {
                    t.push_back(WarpInstr::storeStrided(
                        line + rng.below(mem::kWordsPerLine) *
                                   mem::kWordBytes,
                        gpu.warpSize, 0, 0x1));
                } else {
                    t.push_back(WarpInstr::storeStrided(
                        line, gpu.warpSize, 4,
                        static_cast<std::uint32_t>(rng.next())));
                }
            } else {
                if (rng.chance(0.5)) {
                    t.push_back(WarpInstr::loadScalar(
                        line + rng.below(mem::kWordsPerLine) *
                                   mem::kWordBytes));
                } else {
                    t.push_back(
                        WarpInstr::loadStrided(line, gpu.warpSize));
                }
            }
            if (rng.chance(0.15))
                t.push_back(WarpInstr::fence());
            if (rng.chance(0.3))
                t.push_back(WarpInstr::compute(
                    static_cast<std::uint32_t>(rng.below(30))));
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return t;
    }
};

/**
 * coRR litmus: one SM stores X=1; a reader on another SM loads X
 * twice. Once the first load observes the store, the second load
 * must too (reads of one location never travel back in time).
 * Results at kResultBase words 8/9.
 */
class CorrWorkload : public gpu::Workload
{
  public:
    explicit CorrWorkload(const sim::Config &cfg)
        : params_(WlParams::fromConfig(cfg))
    {}

    std::string name() const override { return "CORR"; }
    bool requiresCoherence() const override { return true; }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        (void)gpu;
        if (warp != 0 || sm > 1)
            return std::make_unique<gpu::TraceProgram>(
                std::vector<WarpInstr>{WarpInstr::exit()});
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        if (sm == 0) {
            std::vector<WarpInstr> t;
            t.push_back(WarpInstr::compute(
                static_cast<std::uint32_t>(rng.below(300))));
            t.push_back(WarpInstr::storeScalar(kX, 1));
            t.push_back(WarpInstr::fence());
            t.push_back(WarpInstr::exit());
            return std::make_unique<gpu::TraceProgram>(std::move(t));
        }
        return std::make_unique<Reader>(
            static_cast<std::uint32_t>(rng.below(200)));
    }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        std::uint32_t r0 = memory.readWord(kResultBase + 8 * 4);
        std::uint32_t r1 = memory.readWord(kResultBase + 9 * 4);
        return !(r0 == 1 && r1 == 0); // new-then-old is forbidden
    }

  private:
    class Reader : public gpu::WarpProgram
    {
      public:
        explicit Reader(std::uint32_t delay) : delay_(delay) {}

        WarpInstr
        next() override
        {
            switch (step_++) {
              case 0:
                return WarpInstr::compute(delay_);
              case 1:
                return WarpInstr::loadScalar(kX);
              case 2:
                r0_ = last_;
                return WarpInstr::loadScalar(kX);
              case 3:
                return WarpInstr::storeScalar(kResultBase + 8 * 4,
                                              r0_);
              case 4:
                return WarpInstr::storeScalar(kResultBase + 9 * 4,
                                              last_);
              case 5:
                return WarpInstr::fence();
              default:
                return WarpInstr::exit();
            }
        }
        void observe(std::uint32_t v) override { last_ = v; }

      private:
        unsigned step_ = 0;
        std::uint32_t delay_;
        std::uint32_t last_ = 0;
        std::uint32_t r0_ = 0;
    };

    WlParams params_;
};

/**
 * IRIW litmus: two writers on different SMs store X and Y; two
 * readers on two further SMs each read both locations (fenced
 * between the reads). Under SC the readers may not disagree on the
 * store order: r1=(X=1,Y=0) together with r2=(Y=1,X=0) is forbidden.
 * Results at kResultBase words 16..19 (r1x, r1y, r2y, r2x).
 */
class IriwWorkload : public gpu::Workload
{
  public:
    explicit IriwWorkload(const sim::Config &cfg)
        : params_(WlParams::fromConfig(cfg))
    {}

    std::string name() const override { return "IRIW"; }
    bool requiresCoherence() const override { return true; }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        (void)gpu;
        if (warp != 0 || sm > 3)
            return std::make_unique<gpu::TraceProgram>(
                std::vector<WarpInstr>{WarpInstr::exit()});
        auto rng = warpRng(params_.seed, kernel, sm, warp);
        std::uint32_t delay =
            static_cast<std::uint32_t>(rng.below(200));
        if (sm <= 1) {
            // Writers.
            std::vector<WarpInstr> t;
            t.push_back(WarpInstr::compute(delay));
            t.push_back(
                WarpInstr::storeScalar(sm == 0 ? kX : kY, 1));
            t.push_back(WarpInstr::fence());
            t.push_back(WarpInstr::exit());
            return std::make_unique<gpu::TraceProgram>(std::move(t));
        }
        bool x_first = (sm == 2);
        return std::make_unique<Reader>(delay, x_first,
                                        sm == 2 ? 16u : 18u);
    }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        std::uint32_t r1x = memory.readWord(kResultBase + 16 * 4);
        std::uint32_t r1y = memory.readWord(kResultBase + 17 * 4);
        std::uint32_t r2y = memory.readWord(kResultBase + 18 * 4);
        std::uint32_t r2x = memory.readWord(kResultBase + 19 * 4);
        // The SC-forbidden disagreement.
        return !(r1x == 1 && r1y == 0 && r2y == 1 && r2x == 0);
    }

  private:
    class Reader : public gpu::WarpProgram
    {
      public:
        Reader(std::uint32_t delay, bool x_first, unsigned slot)
            : delay_(delay), xFirst_(x_first), slot_(slot)
        {}

        WarpInstr
        next() override
        {
            switch (step_++) {
              case 0:
                return WarpInstr::compute(delay_);
              case 1:
                return WarpInstr::loadScalar(xFirst_ ? kX : kY);
              case 2:
                first_ = last_;
                return WarpInstr::fence();
              case 3:
                return WarpInstr::loadScalar(xFirst_ ? kY : kX);
              case 4:
                return WarpInstr::storeScalar(
                    kResultBase + slot_ * 4, first_);
              case 5:
                return WarpInstr::storeScalar(
                    kResultBase + (slot_ + 1) * 4, last_);
              case 6:
                return WarpInstr::fence();
              default:
                return WarpInstr::exit();
            }
        }
        void observe(std::uint32_t v) override { last_ = v; }

      private:
        unsigned step_ = 0;
        std::uint32_t delay_;
        bool xFirst_;
        unsigned slot_;
        std::uint32_t last_ = 0;
        std::uint32_t first_ = 0;
    };

    WlParams params_;
};

/**
 * The Figure 9 example: SM0 runs {ld X; st Y; ld X}, SM1 runs
 * {ld Y; st X; ld Y} — one warp each. Used by the protocol-trace
 * example and FSM tests.
 */
class PingPongWorkload : public gpu::Workload
{
  public:
    explicit PingPongWorkload(const sim::Config &cfg) { (void)cfg; }

    std::string name() const override { return "PINGPONG"; }
    bool requiresCoherence() const override { return true; }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        (void)kernel;
        (void)gpu;
        std::vector<WarpInstr> t;
        if (warp == 0 && sm <= 1) {
            Addr first = (sm == 0) ? kX : kY;
            Addr second = (sm == 0) ? kY : kX;
            t.push_back(WarpInstr::loadScalar(first));
            t.push_back(WarpInstr::storeScalar(second, 7 + sm));
            t.push_back(WarpInstr::loadScalar(first));
            t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::exit());
        return std::make_unique<gpu::TraceProgram>(std::move(t));
    }
};

} // namespace

std::unique_ptr<gpu::Workload>
makeMp(const sim::Config &cfg)
{
    return std::make_unique<MpWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeSb(const sim::Config &cfg)
{
    return std::make_unique<SbWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeStress(const sim::Config &cfg)
{
    return std::make_unique<StressWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makePingPong(const sim::Config &cfg)
{
    return std::make_unique<PingPongWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeCorr(const sim::Config &cfg)
{
    return std::make_unique<CorrWorkload>(cfg);
}

std::unique_ptr<gpu::Workload>
makeIriw(const sim::Config &cfg)
{
    return std::make_unique<IriwWorkload>(cfg);
}

} // namespace gtsc::workloads
