/**
 * @file
 * Shared helpers for the synthetic benchmark generators.
 *
 * Each generator reproduces the *memory behaviour* of one of the
 * paper's twelve benchmarks (Section VI-A): footprint, read/write
 * mix, cross-SM sharing, fence density and compute intensity. The
 * address-space layout spreads regions across L2 partitions via the
 * global line interleaving. All randomness is drawn from a seeded
 * generator keyed by (seed, sm, warp), so runs are reproducible.
 */

#ifndef GTSC_WORKLOADS_COMMON_HH_
#define GTSC_WORKLOADS_COMMON_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/config.hh"
#include "sim/rng.hh"

namespace gtsc::workloads
{

/** Address-space bases for workload regions (128B-line aligned). */
inline constexpr Addr kSharedBase = 0x10000000;
inline constexpr Addr kFlagBase = 0x20000000;
inline constexpr Addr kAuxBase = 0x30000000;
inline constexpr Addr kPrivateBase = 0x40000000;
inline constexpr Addr kResultBase = 0x50000000;

/** Byte address of line `i` in a region. */
inline Addr
lineAt(Addr base, std::uint64_t i)
{
    return base + i * mem::kLineBytes;
}

/** Byte address of word `i` in a region. */
inline Addr
wordAt(Addr base, std::uint64_t i)
{
    return base + i * mem::kWordBytes;
}

/** Per-warp deterministic RNG. */
inline sim::Rng
warpRng(std::uint64_t seed, unsigned kernel, SmId sm, WarpId warp)
{
    return sim::Rng(seed * 0x9e3779b97f4a7c15ULL +
                    (std::uint64_t{kernel} << 40) +
                    (std::uint64_t{sm} << 20) + warp + 1);
}

/** Scaling knobs shared by all generators. */
struct WlParams
{
    double scale = 1.0;
    std::uint64_t seed = 1;

    static WlParams
    fromConfig(const sim::Config &cfg)
    {
        WlParams p;
        p.scale = cfg.getDouble("wl.scale", 1.0);
        p.seed = cfg.getUint("wl.seed", 1);
        return p;
    }

    /** Scaled iteration count, at least 1. */
    unsigned
    iters(double base) const
    {
        double v = base * scale;
        return v < 1.0 ? 1u : static_cast<unsigned>(v);
    }
};

/**
 * Convenience base: workloads that precompute a per-warp trace.
 * Subclasses implement buildTrace().
 */
class TraceWorkload : public gpu::Workload
{
  public:
    explicit TraceWorkload(const sim::Config &cfg)
        : params_(WlParams::fromConfig(cfg))
    {}

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &gpu) override
    {
        return std::make_unique<gpu::TraceProgram>(
            buildTrace(kernel, sm, warp, gpu));
    }

  protected:
    virtual std::vector<gpu::WarpInstr>
    buildTrace(unsigned kernel, SmId sm, WarpId warp,
               const gpu::GpuParams &gpu) = 0;

    WlParams params_;
};

} // namespace gtsc::workloads

#endif // GTSC_WORKLOADS_COMMON_HH_
