#include "workloads/registry.hh"

#include "sim/log.hh"
#include "workloads/factories.hh"
#include "workloads/trace_file.hh"

namespace gtsc::workloads
{

std::unique_ptr<gpu::Workload>
makeWorkload(const std::string &name, const sim::Config &cfg)
{
    if (name == "bh")
        return makeBh(cfg);
    if (name == "cc")
        return makeCc(cfg);
    if (name == "dlp")
        return makeDlp(cfg);
    if (name == "vpr")
        return makeVpr(cfg);
    if (name == "stn")
        return makeStn(cfg);
    if (name == "bfs")
        return makeBfs(cfg);
    if (name == "ccp")
        return makeCcp(cfg);
    if (name == "ge")
        return makeGe(cfg);
    if (name == "hs")
        return makeHs(cfg);
    if (name == "km")
        return makeKm(cfg);
    if (name == "bp")
        return makeBp(cfg);
    if (name == "sgm")
        return makeSgm(cfg);
    if (name == "mp")
        return makeMp(cfg);
    if (name == "sb")
        return makeSb(cfg);
    if (name == "stress")
        return makeStress(cfg);
    if (name == "pingpong")
        return makePingPong(cfg);
    if (name == "corr")
        return makeCorr(cfg);
    if (name == "iriw")
        return makeIriw(cfg);
    if (name == "litmusgen")
        return makeLitmusGen(cfg);
    if (name.rfind("trace:", 0) == 0)
        return std::make_unique<TraceFileWorkload>(name.substr(6));
    GTSC_FATAL("unknown workload '", name, "'");
}

const std::vector<std::string> &
coherentSet()
{
    static const std::vector<std::string> kSet = {"bh", "cc",  "dlp",
                                                  "vpr", "stn", "bfs"};
    return kSet;
}

const std::vector<std::string> &
privateSet()
{
    static const std::vector<std::string> kSet = {"ccp", "ge", "hs",
                                                  "km",  "bp", "sgm"};
    return kSet;
}

std::vector<std::string>
allBenchmarks()
{
    std::vector<std::string> all = coherentSet();
    for (const auto &n : privateSet())
        all.push_back(n);
    return all;
}

} // namespace gtsc::workloads
