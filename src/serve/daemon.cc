/**
 * @file
 * gtscd — the simulation-serving daemon.
 *
 * Listens on a unix stream socket for line-delimited JSON requests
 * (protocol in service.hh / docs/SERVING.md), resolves each cell of
 * a batched run request against the persistent content-addressed
 * result store, simulates only the misses through the parallel
 * SweepRunner, and streams per-cell results back as they complete.
 * CI, plotting scripts and interactive clients (tools/gtsc_client.py)
 * all talk to the same store, so no (config, workload, protocol)
 * cell is ever simulated twice on one machine.
 *
 * Connections are served sequentially; parallelism comes from the
 * batch (--jobs fans a request's misses over the sweep pool), and
 * the store's file locking keeps concurrent *processes* — another
 * daemon, a CLI sweep — safe.
 *
 * Usage:
 *   gtscd [--socket PATH] [--store PATH] [--max-bytes N]
 *         [--jobs N] [--once] [--no-store] [key=value ...]
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/runner.hh"
#include "serve/service.hh"

using namespace gtsc;

namespace
{

/** write(2) the whole buffer; false when the client went away. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Serve one connection; true when a shutdown op was received. */
bool
serveConnection(int fd, serve::Service &service)
{
    bool shutdown = false;
    bool clientGone = false;
    serve::Service::LineSink sink = [&](const std::string &line) {
        if (!clientGone && !writeAll(fd, line + "\n"))
            clientGone = true;
    };

    std::string buf;
    char chunk[65536];
    while (!shutdown && !clientGone) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl;
             (nl = buf.find('\n', start)) != std::string::npos;
             start = nl + 1) {
            std::string line = buf.substr(start, nl - start);
            if (!service.handleLine(line, sink)) {
                shutdown = true;
                break;
            }
        }
        buf.erase(0, start);
    }
    return shutdown;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket PATH] [--store PATH] [--max-bytes N]\n"
        "          [--jobs N] [--once] [--no-store] [key=value ...]\n"
        "  --socket PATH   unix socket to listen on\n"
        "                  (default: <store-root>/gtscd.sock)\n"
        "  --store PATH    result-store root (default:\n"
        "                  GTSC_RESULT_STORE, else ~/.cache/gtsc)\n"
        "  --max-bytes N   store size cap for LRU eviction\n"
        "  --jobs N        default sweep workers per request\n"
        "  --once          exit after the first connection closes\n"
        "  --no-store      serve without the persistent store\n"
        "  key=value       base config for every request\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string storeRoot;
    std::uint64_t maxBytes = 256ull << 20;
    unsigned jobs = 0;
    bool once = false;
    bool noStore = false;
    sim::Config base;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            socketPath = argv[++i];
        } else if (arg == "--store" && i + 1 < argc) {
            storeRoot = argv[++i];
        } else if (arg == "--max-bytes" && i + 1 < argc) {
            maxBytes = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--no-store") {
            noStore = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!base.parseOverride(arg)) {
            std::fprintf(stderr, "gtscd: bad argument '%s'\n",
                         argv[i]);
            return usage(argv[0]);
        }
    }

    std::signal(SIGPIPE, SIG_IGN);

    serve::ServiceOptions opts;
    opts.jobs = jobs;
    opts.baseConfig = base;
    if (!noStore) {
        serve::ResultStore::Options so;
        so.root = storeRoot;
        so.maxBytes = maxBytes;
        try {
            opts.store =
                std::make_shared<serve::ResultStore>(std::move(so));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "gtscd: %s\n", e.what());
            return 1;
        }
    }
    if (socketPath.empty()) {
        socketPath = (opts.store ? opts.store->root()
                                 : serve::ResultStore::defaultRoot()) +
                     "/gtscd.sock";
    }
    serve::Service service(std::move(opts));

    int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        std::perror("gtscd: socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "gtscd: socket path too long: %s\n",
                     socketPath.c_str());
        return 1;
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::perror("gtscd: bind");
        return 1;
    }
    if (::listen(listenFd, 8) != 0) {
        std::perror("gtscd: listen");
        return 1;
    }
    std::fprintf(stderr, "gtscd: listening on %s\n",
                 socketPath.c_str());
    std::fflush(stderr);

    bool shutdown = false;
    while (!shutdown) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            std::perror("gtscd: accept");
            break;
        }
        shutdown = serveConnection(fd, service);
        ::close(fd);
        if (once)
            break;
    }
    ::close(listenFd);
    ::unlink(socketPath.c_str());
    std::fprintf(stderr,
                 "gtscd: exiting (%llu simulations served "
                 "this process)\n",
                 static_cast<unsigned long long>(
                     harness::runOneCallCount()));
    return 0;
}
