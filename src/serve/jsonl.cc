#include "serve/jsonl.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace gtsc::serve::json
{

const Value *
Value::get(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    const Value *found = nullptr;
    for (const auto &kv : object) {
        if (kv.first == key)
            found = &kv.second;
    }
    return found;
}

std::string
Value::asString() const
{
    switch (type) {
    case Type::String:
        return str;
    case Type::Bool:
        return boolean ? "true" : "false";
    case Type::Number: {
        // Integral numbers render without a decimal point so config
        // overrides like {"gpu.num_sms": 4} become "4", not "4.0".
        long long ll = static_cast<long long>(number);
        if (static_cast<double>(ll) == number)
            return std::to_string(ll);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number);
        return buf;
    }
    default:
        return "";
    }
}

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Value *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (error_)
            *error_ = why + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_++;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->type = Value::Type::String;
            return parseString(&out->str);
        }
        if (literal("true")) {
            out->type = Value::Type::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->type = Value::Type::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->type = Value::Type::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(Value *out)
    {
        out->type = Value::Type::Object;
        pos_++; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            pos_++;
            skipWs();
            Value v;
            if (!parseValue(&v))
                return false;
            out->object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == '}') {
                pos_++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value *out)
    {
        out->type = Value::Type::Array;
        pos_++; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!parseValue(&v))
                return false;
            out->array.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == ']') {
                pos_++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string *out)
    {
        pos_++; // opening quote
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out->push_back(e);
                break;
            case 'b':
                out->push_back('\b');
                break;
            case 'f':
                out->push_back('\f');
                break;
            case 'n':
                out->push_back('\n');
                break;
            case 'r':
                out->push_back('\r');
                break;
            case 't':
                out->push_back('\t');
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two 3-byte sequences; the
                // protocol carries ASCII identifiers in practice).
                if (cp < 0x80) {
                    out->push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out->push_back(
                        static_cast<char>(0xc0 | (cp >> 6)));
                    out->push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out->push_back(
                        static_cast<char>(0xe0 | (cp >> 12)));
                    out->push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f)));
                    out->push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value *out)
    {
        const char *start = text_.data() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected value");
        pos_ += static_cast<std::size_t>(end - start);
        out->type = Value::Type::Number;
        out->number = v;
        return true;
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parse(std::string_view text, Value *out, std::string *error)
{
    *out = Value();
    return Parser(text, error).run(out);
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
            break;
        }
    }
    return out;
}

} // namespace gtsc::serve::json
