/**
 * @file
 * Minimal JSON parsing/escaping for the gtscd line-delimited
 * protocol. Supports the full JSON value grammar (objects, arrays,
 * strings with \uXXXX escapes, numbers, booleans, null) into a
 * simple tagged value; no external dependencies. Writing stays
 * string-building at the call sites (the protocol emits flat
 * objects), with escape() for string payloads.
 */

#ifndef GTSC_SERVE_JSONL_HH_
#define GTSC_SERVE_JSONL_HH_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gtsc::serve::json
{

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    /** Insertion order preserved; duplicate keys keep the last. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *get(std::string_view key) const;

    /**
     * Loose scalar-to-string coercion: strings verbatim, numbers
     * via shortest round-trip-ish %g, booleans "true"/"false".
     * Empty for null/array/object. Lets clients send config values
     * as native JSON types.
     */
    std::string asString() const;
};

/**
 * Parse one JSON document (trailing whitespace allowed, trailing
 * garbage rejected). Returns false with *error set on failure.
 */
bool parse(std::string_view text, Value *out, std::string *error);

/** JSON-escape `s` (no surrounding quotes). */
std::string escape(std::string_view s);

} // namespace gtsc::serve::json

#endif // GTSC_SERVE_JSONL_HH_
