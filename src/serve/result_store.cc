#include "serve/result_store.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/result_codec.hh"
#include "serve/sha256.hh"
#include "sim/log.hh"

namespace fs = std::filesystem;

namespace gtsc::serve
{

const char *const kStoreCodeVersion = "pr10";

namespace
{

/**
 * RAII advisory lock on the store-wide lock file. Writers and the
 * evictor take it exclusively around rename/unlink so the
 * size-accounting scan never races a concurrent writer; readers
 * don't need it (rename is atomic, so they see a complete old or
 * complete new entry, never a torn one).
 */
class StoreLock
{
  public:
    explicit StoreLock(const std::string &lockPath)
    {
        fd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
        if (fd_ >= 0)
            ::flock(fd_, LOCK_EX);
    }
    ~StoreLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    StoreLock(const StoreLock &) = delete;
    StoreLock &operator=(const StoreLock &) = delete;

  private:
    int fd_ = -1;
};

/** "key=value\n" canonical lines minus harness-only sweep.* knobs. */
std::string
simulationConfigString(const sim::Config &cfg)
{
    std::istringstream in(cfg.canonicalString());
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("sweep.", 0) == 0)
            continue;
        out << line << '\n';
    }
    return out.str();
}

std::size_t
countLines(const std::string &s)
{
    return static_cast<std::size_t>(
        std::count(s.begin(), s.end(), '\n'));
}

} // namespace

ResultStore::ResultStore(Options opts) : opts_(std::move(opts))
{
    if (opts_.codeVersion.empty())
        opts_.codeVersion = kStoreCodeVersion;
    root_ = opts_.root.empty() ? defaultRoot() : opts_.root;
    dir_ = root_ + "/v" + std::to_string(kStoreSchemaVersion);
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        GTSC_FATAL("result store: cannot create '", dir_, "': ",
                   ec.message());
}

std::string
ResultStore::defaultRoot()
{
    if (const char *env = std::getenv("GTSC_RESULT_STORE")) {
        if (*env != '\0')
            return env;
    }
    if (const char *home = std::getenv("HOME")) {
        if (*home != '\0')
            return std::string(home) + "/.cache/gtsc";
    }
    return "/tmp/gtsc-cache";
}

std::string
ResultStore::keyFor(const sim::Config &cfg,
                    const std::string &protocol,
                    const std::string &consistency,
                    const std::string &workload) const
{
    std::ostringstream material;
    material << "gtsc-store-key\n"
             << "schema=" << kStoreSchemaVersion << '\n'
             << "code=" << opts_.codeVersion << '\n'
             << "protocol=" << protocol << '\n'
             << "consistency=" << consistency << '\n'
             << "workload=" << workload << '\n'
             << "config:\n"
             << simulationConfigString(cfg);
    return Sha256::hexDigest(material.str());
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    return dir_ + "/" + key.substr(0, 2) + "/" + key + ".res";
}

bool
ResultStore::lookup(const harness::RunSpec &spec,
                    harness::RunResult *out)
{
    return get(keyFor(spec.config, spec.protocol, spec.consistency,
                      spec.workload),
               out);
}

void
ResultStore::insert(const harness::RunSpec &spec,
                    const harness::RunResult &result)
{
    put(keyFor(spec.config, spec.protocol, spec.consistency,
               spec.workload),
        result);
}

bool
ResultStore::get(const std::string &key, harness::RunResult *out)
{
    const std::string path = entryPath(key);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::lock_guard<std::mutex> lk(mu_);
            stats_.misses++;
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    // Validate header ("gtsc-store <schema> <codever>"), the echoed
    // key, and the "end <line-count>" trailer before decoding. Any
    // mismatch — a truncated write from a crash, an entry from an
    // older simulator, a hash collision — is a miss, and the bad
    // entry is removed so the fresh run can repair it.
    auto reject = [&] {
        ::unlink(path.c_str());
        std::lock_guard<std::mutex> lk(mu_);
        stats_.misses++;
        stats_.repaired++;
        return false;
    };

    std::istringstream in(text);
    std::string header, keyLine;
    if (!std::getline(in, header) || !std::getline(in, keyLine))
        return reject();
    {
        std::istringstream hs(header);
        std::string magic, codeVer;
        int schema = -1;
        if (!(hs >> magic >> schema >> codeVer) ||
            magic != "gtsc-store" || schema != kStoreSchemaVersion ||
            codeVer != opts_.codeVersion)
            return reject();
    }
    if (keyLine != "key " + key)
        return reject();
    if (text.empty() || text.back() != '\n')
        return reject();
    auto lastStart = text.rfind('\n', text.size() - 2);
    lastStart = lastStart == std::string::npos ? 0 : lastStart + 1;
    std::string trailer =
        text.substr(lastStart, text.size() - 1 - lastStart);
    std::size_t bodyLines = countLines(text) - 1;
    if (trailer != "end " + std::to_string(bodyLines))
        return reject();

    std::string payload = text.substr(header.size() + keyLine.size() +
                                          2,
                                      lastStart - header.size() -
                                          keyLine.size() - 2);
    std::string error;
    if (!decodeResult(payload, out, &error))
        return reject();

    // Refresh mtime so LRU eviction sees this entry as recently used.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    std::lock_guard<std::mutex> lk(mu_);
    stats_.hits++;
    return true;
}

void
ResultStore::put(const std::string &key, const harness::RunResult &r)
{
    std::ostringstream content;
    content << "gtsc-store " << kStoreSchemaVersion << ' '
            << opts_.codeVersion << '\n'
            << "key " << key << '\n';
    content << encodeResult(r);
    std::string body = content.str();
    content << "end " << countLines(body) << '\n';
    const std::string text = content.str();

    const std::string path = entryPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return; // best-effort cache: simulation already succeeded

    static std::atomic<std::uint64_t> tmpSeq{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(::getpid()) + "." +
                      std::to_string(tmpSeq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out << text;
        out.flush();
        if (!out) {
            ::unlink(tmp.c_str());
            return;
        }
    }

    {
        StoreLock lock(dir_ + "/lock");
        if (::rename(tmp.c_str(), path.c_str()) != 0) {
            ::unlink(tmp.c_str());
            return;
        }
        if (opts_.maxBytes > 0)
            evictLocked();
    }
    std::lock_guard<std::mutex> lk(mu_);
    stats_.puts++;
}

void
ResultStore::evictLocked()
{
    struct Entry
    {
        std::string path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) ||
            it->path().extension() != ".res")
            continue;
        Entry e;
        e.path = it->path().string();
        e.size = it->file_size(ec);
        if (ec)
            continue;
        e.mtime = it->last_write_time(ec);
        if (ec)
            continue;
        total += e.size;
        entries.push_back(std::move(e));
    }
    if (total <= opts_.maxBytes)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    std::uint64_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= opts_.maxBytes)
            break;
        if (::unlink(e.path.c_str()) == 0) {
            total -= e.size;
            evicted++;
        }
    }
    if (evicted > 0) {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.evictions += evicted;
    }
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::uint64_t
ResultStore::diskBytes() const
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            it->path().extension() == ".res")
            total += it->file_size(ec);
    }
    return total;
}

std::size_t
ResultStore::entryCount() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            it->path().extension() == ".res")
            n++;
    }
    return n;
}

std::shared_ptr<ResultStore>
storeFromConfig(const sim::Config &cfg)
{
    if (!cfg.getBool("sweep.store", false))
        return nullptr;
    ResultStore::Options opts;
    opts.root = cfg.getString("sweep.store_path", "");
    opts.maxBytes =
        cfg.getUint("sweep.store_max_bytes", 256ull << 20);
    return std::make_shared<ResultStore>(std::move(opts));
}

} // namespace gtsc::serve
