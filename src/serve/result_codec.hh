/**
 * @file
 * Exact text serialization of harness::RunResult for the persistent
 * result store. Doubles are encoded as the hex of their IEEE-754
 * bits, so a decoded result is bit-identical to the one that was
 * encoded: same CSV/JSON report rows, same stats.toString(), same
 * percentile estimates (the full Distribution state — reservoir and
 * stride included — round-trips). The obs::Session pointer is not
 * serialized (a decoded result has obs == nullptr); the artifact
 * paths the original run wrote are.
 */

#ifndef GTSC_SERVE_RESULT_CODEC_HH_
#define GTSC_SERVE_RESULT_CODEC_HH_

#include <string>

#include "harness/runner.hh"

namespace gtsc::serve
{

/** Serialize `r` as line-oriented text (ends with a newline). */
std::string encodeResult(const harness::RunResult &r);

/**
 * Parse text produced by encodeResult().
 * @return false (with *error set) on any malformed line; *out is
 *         unspecified then. Unknown tags are an error — the store
 *         versions its entries, so a format change means a miss,
 *         never a guess.
 */
bool decodeResult(const std::string &text, harness::RunResult *out,
                  std::string *error);

} // namespace gtsc::serve

#endif // GTSC_SERVE_RESULT_CODEC_HH_
