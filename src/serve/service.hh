/**
 * @file
 * Transport-independent request handler for the gtscd daemon: one
 * line-delimited JSON request in, a stream of line-delimited JSON
 * responses out. The daemon feeds it socket lines; tests feed it
 * strings directly (tests/serve/service_test.cc) — the protocol is
 * fully exercised without a socket.
 *
 * Protocol (one JSON object per line; see docs/SERVING.md):
 *
 *   {"op":"ping"}                      -> pong + version stamps
 *   {"op":"stats"}                     -> store hit/miss/put counts
 *   {"op":"shutdown"}                  -> ack; handler returns false
 *   {"op":"run","id":...,"jobs":N,
 *    "config":{...base overrides...},
 *    "cells":[{"workload":"bh","protocol":"gtsc",
 *              "consistency":"rc","config":{...}}, ...]}
 *
 * A run request streams one "result" line per cell as it completes
 * (cache hits first, then misses in completion order), each carrying
 * the cell index, whether it was served from the store, the store
 * key, the flat result JSON, and the exact report CSV row; a final
 * "done" line carries hit/miss totals.
 */

#ifndef GTSC_SERVE_SERVICE_HH_
#define GTSC_SERVE_SERVICE_HH_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "serve/jsonl.hh"
#include "serve/result_store.hh"
#include "sim/config.hh"

namespace gtsc::serve
{

struct ServiceOptions
{
    /** Result store; null = every cell simulates (no caching). */
    std::shared_ptr<ResultStore> store;

    /** Default sweep worker count (requests may override). */
    unsigned jobs = 0;

    /** Base configuration every request starts from. */
    sim::Config baseConfig;
};

class Service
{
  public:
    /** Receives one response line (no trailing newline). */
    using LineSink = std::function<void(const std::string &)>;

    explicit Service(ServiceOptions opts);

    /**
     * Handle one request line, emitting responses through `sink`
     * (serialized internally — sweep workers complete cells
     * concurrently). Blank lines are ignored. Returns false when
     * the request asked the server to shut down.
     */
    bool handleLine(const std::string &line, const LineSink &sink);

  private:
    void handleRun(const json::Value &req, const std::string &id,
                   const LineSink &sink);

    ServiceOptions opts_;
    std::mutex sinkMu_;
};

} // namespace gtsc::serve

#endif // GTSC_SERVE_SERVICE_HH_
