/**
 * @file
 * Persistent, content-addressed store of simulation results.
 *
 * Every (config, protocol, consistency, workload) cell maps to a
 * SHA-256 key over the canonicalized explicit configuration (sorted
 * keys, normalized values, harness-only `sweep.*` knobs excluded)
 * plus the cell identity and a schema/code version stamp. Entries
 * live under `<root>/v1/<kk>/<key>.res` where `kk` is the first key
 * byte — one file per result, written atomically (temp file +
 * rename) under an advisory flock, so concurrent writers (sweep
 * workers, multiple processes, a daemon next to a CLI run) never
 * produce a torn entry. Reads need no lock: they see either the old
 * or the new file. Truncated, corrupt, or version-mismatched entries
 * are treated as misses and removed (miss + repair). A size cap
 * evicts least-recently-used entries (mtime, refreshed on every
 * hit).
 *
 * The store implements harness::SweepCache, so a SweepRunner with it
 * attached skips runOne() entirely on hits and returns results
 * bit-identical to fresh simulations (see result_codec.hh and
 * tests/integration/store_sweep_test.cc).
 */

#ifndef GTSC_SERVE_RESULT_STORE_HH_
#define GTSC_SERVE_RESULT_STORE_HH_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "harness/sweep.hh"
#include "sim/config.hh"

namespace gtsc::serve
{

/** Entry-format generation; bump when the on-disk layout changes. */
constexpr int kStoreSchemaVersion = 2;

/**
 * Simulator-output generation baked into every key and entry: bump
 * whenever a change alters what runOne() produces for the same
 * configuration, so stale results can never be served.
 */
extern const char *const kStoreCodeVersion;

struct StoreStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t evictions = 0;
    /** Entries rejected (truncated/corrupt/version) and removed. */
    std::uint64_t repaired = 0;
};

class ResultStore final : public harness::SweepCache
{
  public:
    struct Options
    {
        /**
         * Store root. Empty resolves through the GTSC_RESULT_STORE
         * environment variable, then ~/.cache/gtsc.
         */
        std::string root;

        /** Size cap in bytes for LRU eviction; 0 = unlimited. */
        std::uint64_t maxBytes = 256ull << 20;

        /** Version stamp; overridable for mismatch tests. */
        std::string codeVersion;
    };

    explicit ResultStore(Options opts);

    /** GTSC_RESULT_STORE env var, else ~/.cache/gtsc. */
    static std::string defaultRoot();

    const std::string &root() const { return root_; }

    /** Hex SHA-256 store key for one experiment cell. */
    std::string keyFor(const sim::Config &cfg,
                       const std::string &protocol,
                       const std::string &consistency,
                       const std::string &workload) const;

    /** Absolute path the entry for `key` lives at. */
    std::string entryPath(const std::string &key) const;

    // SweepCache interface (thread- and process-safe).
    bool lookup(const harness::RunSpec &spec,
                harness::RunResult *out) override;
    void insert(const harness::RunSpec &spec,
                const harness::RunResult &result) override;

    /** Key-level access (daemon / tests). */
    bool get(const std::string &key, harness::RunResult *out);
    void put(const std::string &key, const harness::RunResult &r);

    StoreStats stats() const;

    /** Bytes and entry count currently on disk (full scan). */
    std::uint64_t diskBytes() const;
    std::size_t entryCount() const;

  private:
    void evictLocked();

    Options opts_;
    std::string root_; ///< resolved root
    std::string dir_;  ///< root + "/v1"

    mutable std::mutex mu_; ///< guards stats_ (files use flock)
    StoreStats stats_;
};

/**
 * Build the store the `sweep.store` knob asks for, or nullptr when
 * the knob is off. Root comes from `sweep.store_path`, then the
 * GTSC_RESULT_STORE environment variable, then ~/.cache/gtsc; the
 * cap from `sweep.store_max_bytes`.
 */
std::shared_ptr<ResultStore> storeFromConfig(const sim::Config &cfg);

} // namespace gtsc::serve

#endif // GTSC_SERVE_RESULT_STORE_HH_
