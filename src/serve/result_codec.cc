#include "serve/result_codec.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace gtsc::serve
{

namespace
{

std::string
hexBits(double v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    return buf;
}

bool
parseHexBits(const std::string &tok, double *out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    unsigned long long bits = std::strtoull(tok.c_str(), &end, 16);
    if (end == tok.c_str() || *end != '\0')
        return false;
    *out = std::bit_cast<double>(static_cast<std::uint64_t>(bits));
    return true;
}

bool
parseU64(const std::string &tok, std::uint64_t *out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

} // namespace

std::string
encodeResult(const harness::RunResult &r)
{
    std::ostringstream oss;
    auto s = [&](const char *name, const std::string &v) {
        oss << "s " << name << ' ' << v << '\n';
    };
    auto u = [&](const char *name, std::uint64_t v) {
        oss << "u " << name << ' ' << v << '\n';
    };
    auto f = [&](const char *name, double v) {
        oss << "f " << name << ' ' << hexBits(v) << '\n';
    };

    s("workload", r.workload);
    s("protocol", r.protocol);
    s("consistency", r.consistency);
    u("cycles", r.cycles);
    u("instructions", r.instructions);
    u("mem_stall_cycles", r.memStallCycles);
    u("active_cycles", r.activeCycles);
    u("noc_bytes", r.nocBytes);
    u("noc_packets", r.nocPackets);
    f("avg_noc_latency", r.avgNocLatency);
    f("noc_latency_stddev", r.nocLatencyStddev);
    f("noc_latency_p50", r.nocLatencyP50);
    f("noc_latency_p99", r.nocLatencyP99);
    u("l1_hits", r.l1Hits);
    u("l1_miss_cold", r.l1MissCold);
    u("l1_miss_expired", r.l1MissExpired);
    u("renewals_sent", r.renewalsSent);
    u("l2_accesses", r.l2Accesses);
    u("dram_accesses", r.dramAccesses);
    u("ts_resets", r.tsResets);
    u("spin_retries", r.spinRetries);
    u("spin_giveups", r.spinGiveups);
    f("energy_core", r.energy.core);
    f("energy_l1", r.energy.l1);
    f("energy_l2", r.energy.l2);
    f("energy_noc", r.energy.noc);
    f("energy_dram", r.energy.dram);
    u("checker_violations", r.checkerViolations);
    u("loads_checked", r.loadsChecked);
    u("verified", r.verified ? 1 : 0);
    u("fast_forwarded", r.fastForwarded);
    u("shards", r.shards);
    u("issue_slots_used", r.issueSlotsUsed);
    u("sm_ticks_executed", r.smTicksExecuted);
    u("noc_ticks_executed", r.nocTicksExecuted);
    f("activity_sm", r.activitySm);
    f("activity_l1", r.activityL1);
    f("activity_l2", r.activityL2);
    f("activity_noc", r.activityNoc);
    f("activity_dram", r.activityDram);

    for (const auto &kv : r.stats.counters())
        oss << "c " << kv.first << ' ' << kv.second << '\n';
    for (const auto &kv : r.stats.distributions()) {
        const sim::Distribution &d = kv.second;
        oss << "D " << kv.first << ' ' << d.count() << ' '
            << d.strideMask() << ' ' << hexBits(d.sum()) << ' '
            << hexBits(d.sumSquares()) << ' ' << hexBits(d.max())
            << ' ' << hexBits(d.count() ? d.min() : 0.0);
        oss << ' ' << d.reservoirSamples().size();
        for (double v : d.reservoirSamples())
            oss << ' ' << hexBits(v);
        oss << '\n';
    }
    for (const std::string &path : r.obsFiles)
        oss << "o " << path << '\n';
    return oss.str();
}

bool
decodeResult(const std::string &text, harness::RunResult *out,
             std::string *error)
{
    *out = harness::RunResult();
    std::istringstream in(text);
    std::string line;
    unsigned lineNo = 0;
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "line " + std::to_string(lineNo) + ": " + why;
        return false;
    };
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.size() < 2 || line[1] != ' ')
            return fail("malformed line '" + line + "'");
        char tag = line[0];
        std::string rest = line.substr(2);
        auto sp = rest.find(' ');
        if (tag != 'o' && sp == std::string::npos)
            return fail("missing value in '" + line + "'");
        std::string name =
            tag == 'o' ? std::string() : rest.substr(0, sp);
        std::string value =
            tag == 'o' ? rest : rest.substr(sp + 1);

        if (tag == 's') {
            if (name == "workload")
                out->workload = value;
            else if (name == "protocol")
                out->protocol = value;
            else if (name == "consistency")
                out->consistency = value;
            else
                return fail("unknown string field '" + name + "'");
        } else if (tag == 'u') {
            std::uint64_t v = 0;
            if (!parseU64(value, &v))
                return fail("bad integer '" + value + "'");
            if (name == "cycles")
                out->cycles = v;
            else if (name == "instructions")
                out->instructions = v;
            else if (name == "mem_stall_cycles")
                out->memStallCycles = v;
            else if (name == "active_cycles")
                out->activeCycles = v;
            else if (name == "noc_bytes")
                out->nocBytes = v;
            else if (name == "noc_packets")
                out->nocPackets = v;
            else if (name == "l1_hits")
                out->l1Hits = v;
            else if (name == "l1_miss_cold")
                out->l1MissCold = v;
            else if (name == "l1_miss_expired")
                out->l1MissExpired = v;
            else if (name == "renewals_sent")
                out->renewalsSent = v;
            else if (name == "l2_accesses")
                out->l2Accesses = v;
            else if (name == "dram_accesses")
                out->dramAccesses = v;
            else if (name == "ts_resets")
                out->tsResets = v;
            else if (name == "spin_retries")
                out->spinRetries = v;
            else if (name == "spin_giveups")
                out->spinGiveups = v;
            else if (name == "checker_violations")
                out->checkerViolations = v;
            else if (name == "loads_checked")
                out->loadsChecked = v;
            else if (name == "verified")
                out->verified = v != 0;
            else if (name == "fast_forwarded")
                out->fastForwarded = v;
            else if (name == "shards")
                out->shards = static_cast<unsigned>(v);
            else if (name == "issue_slots_used")
                out->issueSlotsUsed = v;
            else if (name == "sm_ticks_executed")
                out->smTicksExecuted = v;
            else if (name == "noc_ticks_executed")
                out->nocTicksExecuted = v;
            else
                return fail("unknown integer field '" + name + "'");
        } else if (tag == 'f') {
            double v = 0.0;
            if (!parseHexBits(value, &v))
                return fail("bad double bits '" + value + "'");
            if (name == "avg_noc_latency")
                out->avgNocLatency = v;
            else if (name == "noc_latency_stddev")
                out->nocLatencyStddev = v;
            else if (name == "noc_latency_p50")
                out->nocLatencyP50 = v;
            else if (name == "noc_latency_p99")
                out->nocLatencyP99 = v;
            else if (name == "energy_core")
                out->energy.core = v;
            else if (name == "energy_l1")
                out->energy.l1 = v;
            else if (name == "energy_l2")
                out->energy.l2 = v;
            else if (name == "energy_noc")
                out->energy.noc = v;
            else if (name == "energy_dram")
                out->energy.dram = v;
            else if (name == "activity_sm")
                out->activitySm = v;
            else if (name == "activity_l1")
                out->activityL1 = v;
            else if (name == "activity_l2")
                out->activityL2 = v;
            else if (name == "activity_noc")
                out->activityNoc = v;
            else if (name == "activity_dram")
                out->activityDram = v;
            else
                return fail("unknown double field '" + name + "'");
        } else if (tag == 'c') {
            std::uint64_t v = 0;
            if (!parseU64(value, &v))
                return fail("bad counter value '" + value + "'");
            out->stats.counter(name) = v;
        } else if (tag == 'D') {
            std::istringstream ds(value);
            std::uint64_t count = 0, stride = 0, nRes = 0;
            std::string sumTok, sumSqTok, maxTok, minTok;
            if (!(ds >> count >> stride >> sumTok >> sumSqTok >>
                  maxTok >> minTok >> nRes))
                return fail("truncated distribution '" + name + "'");
            double sum = 0, sumSq = 0, maxV = 0, minV = 0;
            if (!parseHexBits(sumTok, &sum) ||
                !parseHexBits(sumSqTok, &sumSq) ||
                !parseHexBits(maxTok, &maxV) ||
                !parseHexBits(minTok, &minV))
                return fail("bad distribution bits in '" + name + "'");
            std::vector<double> reservoir;
            reservoir.reserve(nRes);
            for (std::uint64_t i = 0; i < nRes; ++i) {
                std::string tok;
                double v = 0.0;
                if (!(ds >> tok) || !parseHexBits(tok, &v))
                    return fail("truncated reservoir in '" + name +
                                "'");
                reservoir.push_back(v);
            }
            out->stats.distribution(name) = sim::Distribution::restore(
                count, sum, sumSq, maxV, minV, stride,
                std::move(reservoir));
        } else if (tag == 'o') {
            out->obsFiles.push_back(value);
        } else {
            return fail(std::string("unknown tag '") + tag + "'");
        }
    }
    return true;
}

} // namespace gtsc::serve
