#include "serve/service.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "protocols/builders.hh"
#include "workloads/registry.hh"

namespace gtsc::serve
{

namespace
{

std::string
errorLine(const std::string &id, const std::string &message)
{
    std::ostringstream oss;
    oss << "{\"ok\":false,\"op\":\"error\",\"id\":\""
        << json::escape(id) << "\",\"message\":\""
        << json::escape(message) << "\"}";
    return oss.str();
}

/** Apply every member of a JSON object as a config override. */
bool
applyConfigObject(const json::Value *obj, sim::Config *cfg,
                  std::string *error)
{
    if (obj == nullptr)
        return true;
    if (!obj->isObject()) {
        *error = "\"config\" must be an object";
        return false;
    }
    for (const auto &kv : obj->object) {
        if (kv.second.isObject() || kv.second.isArray() ||
            kv.second.isNull()) {
            *error = "config value for '" + kv.first +
                     "' must be a scalar";
            return false;
        }
        cfg->set(kv.first, kv.second.asString());
    }
    return true;
}

} // namespace

Service::Service(ServiceOptions opts) : opts_(std::move(opts)) {}

bool
Service::handleLine(const std::string &line, const LineSink &rawSink)
{
    // Serialize emission: sweep workers stream results concurrently.
    auto sink = [&](const std::string &s) {
        std::lock_guard<std::mutex> lk(sinkMu_);
        rawSink(s);
    };

    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return true;

    json::Value req;
    std::string err;
    if (!json::parse(line, &req, &err)) {
        sink(errorLine("", "bad JSON: " + err));
        return true;
    }
    if (!req.isObject()) {
        sink(errorLine("", "request must be a JSON object"));
        return true;
    }
    const json::Value *opVal = req.get("op");
    std::string op = opVal ? opVal->asString() : "run";
    const json::Value *idVal = req.get("id");
    std::string id = idVal ? idVal->asString() : "";

    if (op == "ping") {
        std::ostringstream oss;
        oss << "{\"ok\":true,\"op\":\"pong\",\"id\":\""
            << json::escape(id) << "\",\"schema\":"
            << kStoreSchemaVersion << ",\"code\":\""
            << json::escape(kStoreCodeVersion) << "\",\"store\":\""
            << json::escape(opts_.store ? opts_.store->root() : "")
            << "\"}";
        sink(oss.str());
        return true;
    }
    if (op == "stats") {
        StoreStats s =
            opts_.store ? opts_.store->stats() : StoreStats{};
        std::ostringstream oss;
        oss << "{\"ok\":true,\"op\":\"stats\",\"id\":\""
            << json::escape(id) << "\",\"hits\":" << s.hits
            << ",\"misses\":" << s.misses << ",\"puts\":" << s.puts
            << ",\"evictions\":" << s.evictions
            << ",\"repaired\":" << s.repaired << ",\"entries\":"
            << (opts_.store ? opts_.store->entryCount() : 0)
            << ",\"disk_bytes\":"
            << (opts_.store ? opts_.store->diskBytes() : 0) << "}";
        sink(oss.str());
        return true;
    }
    if (op == "shutdown") {
        sink("{\"ok\":true,\"op\":\"bye\",\"id\":\"" +
             json::escape(id) + "\"}");
        return false;
    }
    if (op == "run") {
        handleRun(req, id, sink);
        return true;
    }
    sink(errorLine(id, "unknown op '" + op + "'"));
    return true;
}

void
Service::handleRun(const json::Value &req, const std::string &id,
                   const LineSink &sink)
{
    std::string err;
    sim::Config base = opts_.baseConfig;
    if (!applyConfigObject(req.get("config"), &base, &err)) {
        sink(errorLine(id, err));
        return;
    }

    const json::Value *cells = req.get("cells");
    if (cells == nullptr || !cells->isArray() ||
        cells->array.empty()) {
        sink(errorLine(id, "\"cells\" must be a non-empty array"));
        return;
    }

    std::vector<harness::RunSpec> specs;
    specs.reserve(cells->array.size());
    for (std::size_t i = 0; i < cells->array.size(); ++i) {
        const json::Value &cell = cells->array[i];
        std::string at = "cell " + std::to_string(i) + ": ";
        if (!cell.isObject()) {
            sink(errorLine(id, at + "must be an object"));
            return;
        }
        harness::RunSpec spec;
        spec.config = base;
        if (!applyConfigObject(cell.get("config"), &spec.config,
                               &err)) {
            sink(errorLine(id, at + err));
            return;
        }
        const json::Value *wl = cell.get("workload");
        const json::Value *proto = cell.get("protocol");
        const json::Value *cons = cell.get("consistency");
        if (!wl || !proto || !cons) {
            sink(errorLine(id, at + "needs workload, protocol and "
                                    "consistency"));
            return;
        }
        spec.workload = wl->asString();
        spec.protocol = proto->asString();
        spec.consistency = cons->asString();
        if (spec.consistency != "sc" && spec.consistency != "tso" &&
            spec.consistency != "rc") {
            sink(errorLine(id, at + "unknown consistency '" +
                                   spec.consistency + "'"));
            return;
        }
        // Reject unknown names up front: runOne would throw from a
        // worker thread after other cells already simulated.
        try {
            protocols::makeProtocol(spec.protocol);
        } catch (const std::exception &) {
            sink(errorLine(id, at + "unknown protocol '" +
                                   spec.protocol + "'"));
            return;
        }
        try {
            sim::Config probe = spec.config;
            workloads::makeWorkload(spec.workload, probe);
        } catch (const std::exception &e) {
            sink(errorLine(id, at + "bad workload '" + spec.workload +
                                   "': " + e.what()));
            return;
        }
        specs.push_back(std::move(spec));
    }

    harness::SweepOptions sweepOpts;
    const json::Value *jobs = req.get("jobs");
    sweepOpts.jobs = jobs && jobs->isNumber()
                         ? static_cast<unsigned>(jobs->number)
                         : opts_.jobs;
    const json::Value *useStore = req.get("store");
    bool storeOn = opts_.store != nullptr &&
                   !(useStore && useStore->type ==
                                     json::Value::Type::Bool &&
                     !useStore->boolean);
    sweepOpts.cache = storeOn ? opts_.store.get() : nullptr;

    std::atomic<std::uint64_t> hits{0}, misses{0};
    sweepOpts.onResult = [&](std::size_t idx,
                             const harness::RunResult &r,
                             bool cached) {
        (cached ? hits : misses).fetch_add(1);
        std::ostringstream oss;
        oss << "{\"ok\":true,\"op\":\"result\",\"id\":\""
            << json::escape(id) << "\",\"cell\":" << idx
            << ",\"cached\":" << (cached ? "true" : "false");
        if (storeOn) {
            oss << ",\"key\":\""
                << opts_.store->keyFor(specs[idx].config,
                                       specs[idx].protocol,
                                       specs[idx].consistency,
                                       specs[idx].workload)
                << "\"";
        }
        oss << ",\"result\":" << harness::toJson(r) << ",\"csv\":\""
            << json::escape(harness::csvRow(r)) << "\"";
        if (!r.obsFiles.empty()) {
            oss << ",\"obs_files\":[";
            for (std::size_t k = 0; k < r.obsFiles.size(); ++k) {
                oss << (k ? "," : "") << "\""
                    << json::escape(r.obsFiles[k]) << "\"";
            }
            oss << "]";
        }
        oss << "}";
        sink(oss.str());
    };

    auto t0 = std::chrono::steady_clock::now();
    try {
        harness::SweepRunner runner(sweepOpts);
        runner.run(specs);
    } catch (const std::exception &e) {
        sink(errorLine(id, std::string("run failed: ") + e.what()));
        return;
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    std::ostringstream oss;
    char secBuf[32];
    std::snprintf(secBuf, sizeof(secBuf), "%.4f", secs);
    oss << "{\"ok\":true,\"op\":\"done\",\"id\":\""
        << json::escape(id) << "\",\"cells\":" << specs.size()
        << ",\"hits\":" << hits.load() << ",\"misses\":"
        << misses.load() << ",\"seconds\":" << secBuf << "}";
    sink(oss.str());
}

} // namespace gtsc::serve
