/**
 * @file
 * Self-contained SHA-256 (FIPS 180-4) for content-addressed store
 * keys. Written against the spec rather than pulled in as a
 * dependency — the container has no crypto library and the store
 * only needs a stable, collision-resistant fingerprint, not a
 * hardware-accelerated one.
 */

#ifndef GTSC_SERVE_SHA256_HH_
#define GTSC_SERVE_SHA256_HH_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gtsc::serve
{

class Sha256
{
  public:
    Sha256();

    /** Absorb `len` bytes; callable any number of times. */
    void update(const void *data, std::size_t len);
    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the 32-byte digest (object is spent). */
    std::array<std::uint8_t, 32> digest();

    /** One-shot convenience: lowercase hex digest of `data`. */
    static std::string hexDigest(std::string_view data);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t totalBytes_ = 0;
    std::array<std::uint8_t, 64> buf_{};
    std::size_t bufLen_ = 0;
};

} // namespace gtsc::serve

#endif // GTSC_SERVE_SHA256_HH_
