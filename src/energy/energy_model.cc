#include "energy/energy_model.hh"

namespace gtsc::energy
{

EnergyModel::EnergyModel(const sim::Config &cfg)
{
    smActivePj_ = cfg.getDouble("energy.sm_active_pj", 5000.0);
    smIdlePj_ = cfg.getDouble("energy.sm_idle_pj", 1200.0);
    instrPj_ = cfg.getDouble("energy.instr_pj", 800.0);
    l1TagPj_ = cfg.getDouble("energy.l1_tag_pj", 12.0);
    l1DataPj_ = cfg.getDouble("energy.l1_data_pj", 65.0);
    l1MetaGtscPj_ = cfg.getDouble("energy.l1_meta_gtsc_pj", 9.0);
    l1MetaTcPj_ = cfg.getDouble("energy.l1_meta_tc_pj", 6.0);
    l2AccessPj_ = cfg.getDouble("energy.l2_access_pj", 240.0);
    nocBytePj_ = cfg.getDouble("energy.noc_byte_pj", 2.6);
    dramAccessPj_ = cfg.getDouble("energy.dram_access_pj", 2600.0);
    l1StaticPj_ = cfg.getDouble("energy.l1_static_pj_cycle", 18.0);
    l2StaticPj_ = cfg.getDouble("energy.l2_static_pj_cycle", 260.0);
    nocStaticPj_ = cfg.getDouble("energy.noc_static_pj_cycle", 220.0);
    dramStaticPj_ = cfg.getDouble("energy.dram_static_pj_cycle", 500.0);
}

EnergyBreakdown
EnergyModel::compute(const sim::StatSet &stats,
                     const std::string &protocol,
                     unsigned num_sms) const
{
    constexpr double kPjToJ = 1e-12;
    EnergyBreakdown e;
    double cycles = static_cast<double>(stats.get("gpu.cycles"));

    // Core: active SM-cycles burn full power, everything else idles.
    double active = static_cast<double>(stats.get("sm.active_cycles"));
    double all_sm_cycles = cycles * num_sms;
    double idle_like = all_sm_cycles > active ? all_sm_cycles - active : 0;
    e.core = (active * smActivePj_ + idle_like * smIdlePj_ +
              static_cast<double>(stats.get("sm.instructions")) *
                  instrPj_) *
             kPjToJ;

    // L1: tag probes, data array, per-access coherence metadata.
    double meta_pj = 0.0;
    if (protocol == "gtsc")
        meta_pj = l1MetaGtscPj_;
    else if (protocol == "tc")
        meta_pj = l1MetaTcPj_;
    double tag = static_cast<double>(stats.get("l1.tag_accesses"));
    double l1_data = static_cast<double>(stats.get("l1.data_reads") +
                                         stats.get("l1.data_writes"));
    bool has_l1 = tag > 0;
    e.l1 = (tag * (l1TagPj_ + meta_pj) + l1_data * l1DataPj_ +
            (has_l1 ? cycles * num_sms * l1StaticPj_ : 0.0)) *
           kPjToJ;

    e.l2 = (static_cast<double>(stats.get("l2.accesses")) * l2AccessPj_ +
            cycles * l2StaticPj_) *
           kPjToJ;

    double noc_bytes = static_cast<double>(stats.get("noc.req.bytes") +
                                           stats.get("noc.resp.bytes"));
    e.noc = (noc_bytes * nocBytePj_ + cycles * nocStaticPj_) * kPjToJ;

    double dram_acc = static_cast<double>(stats.get("dram.reads") +
                                          stats.get("dram.writes"));
    e.dram = (dram_acc * dramAccessPj_ + cycles * dramStaticPj_) * kPjToJ;

    return e;
}

} // namespace gtsc::energy
