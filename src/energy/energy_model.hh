/**
 * @file
 * Event-energy model standing in for GPUWattch (Section VI-A).
 *
 * Energy = sum over components of (event counts x per-event energy)
 * plus per-cycle static/idle power. The per-event constants are
 * GPUWattch-magnitude defaults (picojoules), all configurable. The
 * figures the paper reports (16, 17) compare *relative* energy across
 * protocols, which is driven by the event counts the simulator
 * produces (accesses, NoC bytes, DRAM activations, active vs idle SM
 * cycles); the constants set the mix.
 *
 * Consumed stat names (produced by the controllers/SM/NoC):
 *   sm.active_cycles, sm.mem_stall_cycles, sm.compute_stall_cycles,
 *   sm.idle_cycles, sm.instructions,
 *   l1.tag_accesses, l1.data_reads, l1.data_writes,
 *   l2.accesses, l2.writes,
 *   noc.req.bytes, noc.resp.bytes,
 *   dram.reads, dram.writes, gpu.cycles
 */

#ifndef GTSC_ENERGY_ENERGY_MODEL_HH_
#define GTSC_ENERGY_ENERGY_MODEL_HH_

#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace gtsc::energy
{

/** Per-component energy in joules. */
struct EnergyBreakdown
{
    double core = 0;
    double l1 = 0;
    double l2 = 0;
    double noc = 0;
    double dram = 0;

    double
    total() const
    {
        return core + l1 + l2 + noc + dram;
    }
};

class EnergyModel
{
  public:
    explicit EnergyModel(const sim::Config &cfg);

    /**
     * Compute the breakdown from a finished run's statistics.
     * @param protocol protocol name; sets the per-access L1 metadata
     *        cost (G-TSC reads/writes two 16-bit timestamps plus the
     *        warp-timestamp table; TC one 32-bit timestamp).
     * @param num_sms used to scale L1 static power.
     */
    EnergyBreakdown compute(const sim::StatSet &stats,
                            const std::string &protocol,
                            unsigned num_sms) const;

  private:
    // dynamic energies (picojoules per event)
    double smActivePj_;
    double smIdlePj_;
    double instrPj_;
    double l1TagPj_;
    double l1DataPj_;
    double l1MetaGtscPj_;
    double l1MetaTcPj_;
    double l2AccessPj_;
    double nocBytePj_;
    double dramAccessPj_;
    // static power (picojoules per cycle, whole component)
    double l1StaticPj_;
    double l2StaticPj_;
    double nocStaticPj_;
    double dramStaticPj_;
};

} // namespace gtsc::energy

#endif // GTSC_ENERGY_ENERGY_MODEL_HH_
