/**
 * @file
 * Wire sizes of G-TSC messages, following Table I of the paper.
 *
 * | message                  | rts | wts | warp_ts | data |
 * |--------------------------|-----|-----|---------|------|
 * | Read/Renewal req (BusRd) |     |  x  |    x    |      |
 * | Write request (BusWr)    |     |     |    x    |  x   |
 * | Fill response (BusFill)  |  x  |  x  |         |  x   |
 * | Renewal resp (BusRnw)    |  x  |     |         |      |
 * | Write ack (BusWrAck)     |  x  |  x  |         |      |
 *
 * Each timestamp costs tsBytes (2 for 16-bit timestamps); the header
 * (address/type/ids) costs kHeaderBytes; store data is carried in
 * 32-byte sectors.
 */

#ifndef GTSC_CORE_GTSC_MESSAGES_HH_
#define GTSC_CORE_GTSC_MESSAGES_HH_

#include "mem/packet.hh"

namespace gtsc::core
{

inline constexpr std::uint32_t kHeaderBytes = 8;

inline std::uint32_t
gtscMessageBytes(mem::MsgType type, unsigned ts_bytes,
                 std::uint32_t word_mask)
{
    switch (type) {
      case mem::MsgType::BusRd:
        return kHeaderBytes + 2 * ts_bytes; // wts + warp_ts
      case mem::MsgType::BusWr:
        return kHeaderBytes + ts_bytes + mem::maskedDataBytes(word_mask);
      case mem::MsgType::BusFill:
        return kHeaderBytes + 2 * ts_bytes + mem::kLineBytes;
      case mem::MsgType::BusRnw:
        return kHeaderBytes + ts_bytes; // rts only, no data
      case mem::MsgType::BusWrAck:
        return kHeaderBytes + 2 * ts_bytes; // wts + rts
    }
    return kHeaderBytes;
}

} // namespace gtsc::core

#endif // GTSC_CORE_GTSC_MESSAGES_HH_
