/**
 * @file
 * ProtocolBuilder wiring G-TSC into a GpuSystem.
 */

#ifndef GTSC_CORE_GTSC_BUILDER_HH_
#define GTSC_CORE_GTSC_BUILDER_HH_

#include <memory>

#include "core/gtsc_l1.hh"
#include "core/gtsc_l2.hh"
#include "core/ts_domain.hh"
#include "gpu/protocol_builder.hh"

namespace gtsc::core
{

class GtscBuilder : public gpu::ProtocolBuilder
{
  public:
    std::string name() const override { return "gtsc"; }

    void
    prepare(const sim::Config &cfg, sim::StatSet &stats,
            const gpu::GpuParams &params) override
    {
        (void)params;
        domain_ = std::make_unique<TsDomain>(cfg, stats);
    }

    std::unique_ptr<mem::L1Controller>
    makeL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<GtscL1>(sm, cfg, stats, events, *domain_,
                                        probe);
    }

    std::unique_ptr<mem::L2Controller>
    makeL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, mem::CoherenceProbe *probe) override
    {
        if (probe && !probeHooked_) {
            TsDomain *d = domain_.get();
            domain_->addResetListener(
                [probe, d]() { probe->onEpochReset(d->epoch()); });
            probeHooked_ = true;
        }
        return std::make_unique<GtscL2>(part, cfg, stats, events, dram,
                                        memory, *domain_, probe);
    }

    /** The shared timestamp domain (tests). */
    TsDomain &domain() { return *domain_; }

  private:
    std::unique_ptr<TsDomain> domain_;
    bool probeHooked_ = false;
};

} // namespace gtsc::core

#endif // GTSC_CORE_GTSC_BUILDER_HH_
