/**
 * @file
 * G-TSC private (L1) cache controller.
 *
 * Implements the L1 side of the protocol (Figures 1a, 2, 3, 7, 8):
 *  - load hit iff tag match and warp_ts <= rts; hits advance the
 *    warp's timestamp to max(warp_ts, wts);
 *  - misses merge in the MSHR; an expired-lease miss sends a renewal
 *    BusRd carrying the local wts (Section V-B request combining, or
 *    forward-all when gtsc.combine_mshr=false);
 *  - stores are write-through / write-no-allocate; a store hit makes
 *    the line inaccessible until the BusWrAck arrives (update
 *    visibility, Section V-A option 1) or keeps the old copy
 *    readable by other warps (option 2, gtsc.update_visibility);
 *  - timestamp epochs: on an L2 overflow reset the L1 flushes and
 *    rewinds its warp timestamps (Section V-D);
 *  - spin retries advance warp_ts so polling warps renew instead of
 *    re-reading a stale local copy forever.
 */

#ifndef GTSC_CORE_GTSC_L1_HH_
#define GTSC_CORE_GTSC_L1_HH_

#include <vector>

#include "core/gtsc_state.hh"
#include "core/ts_domain.hh"
#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/ring_buffer.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"

namespace gtsc::core
{

class GtscL1 final : public mem::L1Controller
{
  public:
    GtscL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, TsDomain &domain,
           mem::CoherenceProbe *probe);

    bool access(const mem::Access &acc, Cycle now) override;
    void receiveResponse(mem::Packet &&pkt, Cycle now) override;
    /** Replays re-enter access() in order; stop on structural
     *  reject. Inline: the per-cycle call reduces to one empty-deque
     *  check on the (overwhelmingly common) replay-free cycles. */
    void
    tick(Cycle now) override
    {
        while (!replayQueue_.empty()) {
            if (!access(replayQueue_.front(), now))
                break;
            replayQueue_.pop_front();
        }
    }

    /** Pending replays retry (and count stats) every cycle; all
     *  other work arrives through responses or the event queue. */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        return replayQueue_.empty() ? kCycleNever : now + 1;
    }
    void flush(Cycle now) override;
    void noteSpinRetry(WarpId warp, Addr line_addr) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

    /** Current timestamp of a warp (tests/diagnostics). */
    Ts warpTs(WarpId w) const { return warpTs_[w]; }

    /**
     * Snapshot the complete protocol-visible state (verification
     * lab). Only meaningful at settled points: no event-queue
     * callbacks of this controller may be pending (in-flight load
     * completions hold state outside these structs).
     */
    L1VerifyState captureVerifyState();

    /**
     * Restore a captured snapshot. Requires that capacity evictions
     * cannot occur for the restored line set (enough ways per set);
     * LRU stamps are not part of the snapshot.
     */
    void restoreVerifyState(const L1VerifyState &s);

    /**
     * Force-drop a resident clean copy (model-checking action: L1 is
     * write-through, so dropping a line is always legal). Refuses
     * lines owned by an in-flight store — matching the evictable
     * predicate the fill path uses. Returns true if a line was
     * dropped.
     */
    bool verifyEvictLine(Addr line_addr);

  private:
    struct PendingStore
    {
        mem::Access access;
        /** wts of the local version the store merged into. */
        Ts baseWts = 0;
        /** The line was resident when the store was issued. */
        bool hadBlock = false;
    };

    /** Flush + rewind if the domain epoch moved (reset protocol). */
    void adoptEpoch();

    /**
     * Serve a load hit from `blk` (schedules completion).
     * @param forward buffered store whose words are forwarded over
     *        the block data (write-buffer mode, writer warp only);
     *        forwarded words are private register traffic and skip
     *        the coherence probe.
     */
    void completeLoadHit(const mem::Access &acc, const mem::CacheBlock &blk,
                         Cycle now, const mem::Access *forward = nullptr);

    /** Deliver a load from packet data (fill bypass path). */
    void completeLoadFromPacket(const mem::Access &acc,
                                const mem::Packet &pkt, Cycle now);

    bool handleLoad(const mem::Access &acc, mem::CacheBlock *blk,
                    Cycle now);
    bool handleStore(const mem::Access &acc, mem::CacheBlock *blk,
                     Cycle now);

    /** Park an access behind an in-flight store to its line. */
    bool parkBehindStore(const mem::Access &acc);

    void sendBusRd(Addr line, Ts req_wts, Ts warp_ts, WarpId warp);
    void onFill(mem::Packet &pkt, Cycle now);
    void onRenew(mem::Packet &pkt, Cycle now);
    void onWrAck(mem::Packet &pkt, Cycle now);

    /**
     * A response for the entry's line arrived: complete covered
     * waiters (from the block, or from `pkt` on the bypass path),
     * track outstanding responses, and release leftovers for a
     * renewal when the last response has landed.
     */
    void resolveEntry(mem::MshrEntry *entry, mem::CacheBlock *blk,
                      const mem::Packet *pkt, Cycle now);

    /** Move `waiters` into the replay queue and clear it (the
     *  vector's buffer stays with the caller for reuse). */
    void queueReplay(std::vector<mem::Access> &waiters);

    SmId sm_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    TsDomain &domain_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    mem::Mshr mshr_;
    std::vector<Ts> warpTs_;
    std::uint32_t epoch_ = 0;

    /** In-flight stores keyed by request id. */
    sim::SmallFlatMap<std::uint64_t, PendingStore> pendingStores_;
    /** Lines with an in-flight store (value = request id, writer). */
    sim::SmallFlatMap<Addr, std::uint64_t> storeByLine_;
    /** Accesses waiting to re-enter access() (fills, unlocks). */
    sim::RingBuffer<mem::Access> replayQueue_;
    /** resolveEntry / onWrAck waiter scratch: capacity circulates
     *  between this and the pooled MSHR entries (swap, never free). */
    std::vector<mem::Access> resolveScratch_;

    /** Completed-load payloads parked here so the completion event
     *  captures only [this, slot] and stays within SmallFunction's
     *  inline buffer (no per-load closure allocation). */
    struct LoadReply
    {
        mem::Access acc;
        mem::AccessResult res;
    };
    sim::SlotPool<LoadReply> loadReplies_;

    /**
     * Section V-A update-visibility designs:
     *  - Block: option 1, all accesses to the line wait for the ack;
     *  - DualCopy: option 2, other warps read the old copy, the
     *    writer waits;
     *  - WriteBuffer: the design the paper rejects on area grounds
     *    (kept as an ablation): nobody waits — other warps read the
     *    old copy and the writer's own loads forward from the
     *    buffered store; capacity-limited by
     *    gtsc.write_buffer_entries.
     */
    enum class Visibility : std::uint8_t
    {
        Block,
        DualCopy,
        WriteBuffer,
    };

    unsigned numPartitions_;
    Cycle hitLatency_;
    bool combine_;
    Visibility visibility_;
    std::size_t writeBufferEntries_;
    Ts spinBoost_;

    // cached stats
    std::uint64_t *hits_;
    std::uint64_t *missCold_;
    std::uint64_t *missExpired_;
    std::uint64_t *merged_;
    std::uint64_t *renewalsSent_;
    std::uint64_t *busRdSent_;
    std::uint64_t *busWrSent_;
    std::uint64_t *fillBypass_;
    std::uint64_t *lockParks_;
    std::uint64_t *tagAccesses_;
    std::uint64_t *dataReads_;
    std::uint64_t *dataWrites_;
    std::uint64_t *rejects_;
    std::uint64_t *staleResponses_;
    std::uint64_t *wbFullRejects_;
    std::uint64_t *replayHits_;
    std::uint64_t *wbForwards_;
    std::uint64_t *storeBaseStale_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::core

#endif // GTSC_CORE_GTSC_L1_HH_
