/**
 * @file
 * G-TSC shared (L2) cache partition controller.
 *
 * Implements the L2 side of the protocol (Figures 1b, 4, 5, 6):
 *  - reads extend the block lease to warp_ts + lease; a matching wts
 *    yields a data-less renewal (BusRnw), otherwise a BusFill;
 *  - writes never stall: the new wts is scheduled logically after
 *    every outstanding lease (wts' = max(rts + 1, warp_ts));
 *  - the cache is non-inclusive (Section V-C): evictions only fold
 *    the block's rts into the per-partition mem_ts;
 *  - DRAM fills take wts = mem_ts, rts = mem_ts + lease;
 *  - timestamp overflow triggers the domain-wide reset (Section V-D).
 */

#ifndef GTSC_CORE_GTSC_L2_HH_
#define GTSC_CORE_GTSC_L2_HH_

#include <vector>

#include "core/gtsc_state.hh"
#include "core/ts_domain.hh"
#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"

namespace gtsc::core
{

class GtscL2 final : public mem::L2Controller
{
  public:
    GtscL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, TsDomain &domain,
           mem::CoherenceProbe *probe);

    void receiveRequest(mem::Packet &&pkt, Cycle now) override;
    /** Service-queue pump; O(1) when the queue is empty. */
    void
    tick(Cycle now) override
    {
        if (!queue_.empty())
            tickQueue(now);
    }

    /** A non-empty service queue processes (and accrues occupancy
     *  stats) every cycle; misses wake via DRAM events. */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        return queue_.empty() ? kCycleNever : now + 1;
    }
    void flushAll(Cycle now) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

    Ts memTs() const { return memTs_; }

    /**
     * Snapshot the complete protocol-visible state (verification
     * lab). Requires a fully settled controller: service queue and
     * miss table empty (the harness delivers requests one at a time
     * and drains them before snapshotting).
     */
    L2VerifyState captureVerifyState();

    /** Restore a captured snapshot (see captureVerifyState). */
    void restoreVerifyState(const L2VerifyState &s);

    /**
     * Force-evict a resident line (model-checking action): folds the
     * lease into mem_ts and writes back if dirty, exactly like a
     * capacity eviction. Returns true if a line was evicted.
     */
    bool verifyEvictLine(Addr line_addr);

  private:
    struct MissEntry
    {
        std::vector<mem::Packet> waiters;
    };

    /** Rewind every timestamp in this bank (reset listener). */
    void rewindTimestamps();

    /** Process one request against a resident block. */
    void serveHit(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now);
    void serveRead(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now);
    void serveWrite(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now);

    /** True if consumed; false = structural stall (MSHR full). */
    void tickQueue(Cycle now);
    bool process(mem::Packet &pkt, Cycle now);

    void onDramFill(Addr line, const mem::LineData &data, Cycle now);
    void evict(mem::CacheBlock &blk);

    void respond(mem::Packet &&resp, Cycle now);

    /** Clamp requests that predate the current epoch (Section V-D). */
    void normalizeEpoch(mem::Packet &pkt);

    PartitionId part_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::DramChannel &dram_;
    mem::MainMemory &memory_;
    TsDomain &domain_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    Ts memTs_ = 1;
    sim::RingBuffer<mem::Packet> queue_;
    sim::PooledKeyMap<Addr, MissEntry> misses_;
    /** Waiter replay scratch: capacity circulates between this and
     *  the pooled miss entries (swap, never free). */
    std::vector<mem::Packet> waitersScratch_;
    /** Response packets parked here so the completion event captures
     *  only [this, slot] and stays inside SmallFunction's inline
     *  buffer (no per-response closure allocation). */
    sim::SlotPool<mem::Packet> respPool_;

    unsigned ports_;
    Cycle accessLatency_;
    std::size_t mshrCapacity_;
    /** Adaptive lease prediction (gtsc.adaptive_lease). */
    bool adaptiveLease_;
    Ts maxLease_;

    /**
     * Test-only FSM mutations (verify.mutation) the verification lab
     * uses to prove it catches protocol bugs:
     *  - "write_ignores_lease": writes are ordered after the current
     *    version instead of after every outstanding lease
     *    (wts' = max(wts+1, warp_ts)), breaking write serialization;
     *  - "renew_mismatched_wts": renewal requests are granted without
     *    the wts match, extending leases on stale copies.
     * Empty (the default) is the faithful protocol.
     */
    bool mutWriteIgnoresLease_ = false;
    bool mutRenewMismatch_ = false;

    std::uint64_t *accesses_;
    std::uint64_t *hits_;
    std::uint64_t *missesStat_;
    std::uint64_t *renewals_;
    std::uint64_t *fillsSent_;
    std::uint64_t *writes_;
    std::uint64_t *evictions_;
    std::uint64_t *writebacks_;
    std::uint64_t *stallMshrFull_;
    std::uint64_t *queueCycles_;
    std::uint64_t *adaptiveExtensions_;
    sim::Distribution *serviceLatency_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::core

#endif // GTSC_CORE_GTSC_L2_HH_
