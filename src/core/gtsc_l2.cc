#include "core/gtsc_l2.hh"

#include <algorithm>
#include <string>

#include "core/gtsc_messages.hh"
#include "obs/tracer.hh"
#include "sim/log.hh"

namespace gtsc::core
{

GtscL2::GtscL2(PartitionId part, const sim::Config &cfg,
               sim::StatSet &stats, sim::EventQueue &events,
               mem::DramChannel &dram, mem::MainMemory &memory,
               TsDomain &domain, mem::CoherenceProbe *probe)
    : part_(part), stats_(stats), events_(events), dram_(dram),
      memory_(memory), domain_(domain), probe_(probe),
      array_(cfg.getUint("l2.partition_bytes", 128 * 1024),
             cfg.getUint("l2.assoc", 8))
{
    ports_ = static_cast<unsigned>(cfg.getUint("l2.ports", 1));
    accessLatency_ = cfg.getUint("l2.access_latency", 20);
    mshrCapacity_ = cfg.getUint("l2.mshr_entries", 32);
    adaptiveLease_ = cfg.getBool("gtsc.adaptive_lease", false);
    std::string mutation = cfg.getString("verify.mutation", "");
    mutWriteIgnoresLease_ = mutation == "write_ignores_lease";
    mutRenewMismatch_ = mutation == "renew_mismatched_wts";
    if (!mutation.empty() && !mutWriteIgnoresLease_ &&
        !mutRenewMismatch_)
        GTSC_FATAL("unknown verify.mutation '", mutation, "'");
    maxLease_ = cfg.getUint("gtsc.max_lease", domain_.lease() * 32);
    if (maxLease_ > domain_.tsMax() / 4)
        maxLease_ = domain_.tsMax() / 4;

    domain_.addResetListener([this]() { rewindTimestamps(); });

    accesses_ = &stats_.counter("l2.accesses");
    hits_ = &stats_.counter("l2.hits");
    missesStat_ = &stats_.counter("l2.misses");
    renewals_ = &stats_.counter("l2.renewals");
    fillsSent_ = &stats_.counter("l2.fills_sent");
    writes_ = &stats_.counter("l2.writes");
    evictions_ = &stats_.counter("l2.evictions");
    writebacks_ = &stats_.counter("l2.writebacks");
    stallMshrFull_ = &stats_.counter("l2.stall_mshr_full");
    queueCycles_ = &stats_.counter("l2.queue_occupancy_cycles");
    adaptiveExtensions_ = &stats_.counter("gtsc.adaptive_extensions");
    serviceLatency_ = &stats_.distribution("l2.service_latency");
}

bool
GtscL2::quiescent() const
{
    return queue_.empty() && misses_.empty();
}

void
GtscL2::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("l2.part" + std::to_string(part_));
}

void
GtscL2::rewindTimestamps()
{
    array_.forEachValid([this](mem::CacheBlock &blk) {
        blk.meta.wts = 1;
        blk.meta.rts = domain_.lease();
    });
    memTs_ = 1;
    if (trace_) {
        trace_->record(track_,
                       obs::Event{events_.now(), 0, domain_.epoch(), 0,
                                  obs::EventKind::EpochReset, 0, 0});
    }
}

void
GtscL2::flushAll(Cycle now)
{
    (void)now;
    GTSC_ASSERT(quiescent(), "L2 flush while busy");
    array_.forEachValid([this](mem::CacheBlock &blk) {
        memTs_ = std::max(memTs_, blk.meta.rts);
        if (blk.dirty)
            memory_.writeLine(blk.lineAddr, array_.dataOf(blk));
        array_.invalidate(blk);
    });
}

void
GtscL2::receiveRequest(mem::Packet &&pkt, Cycle now)
{
    queue_.push_back(std::move(pkt));
    // The service queue is this controller's only source of tick()
    // work; DRAM fills serve waiters directly (wake contract).
    wake(now);
}

void
GtscL2::normalizeEpoch(mem::Packet &pkt)
{
    if (pkt.epoch < domain_.epoch()) {
        // The requester predates the last timestamp reset: its
        // timestamps are meaningless in this epoch. Treat it as a
        // fresh epoch-1 requester and tell it to flush.
        pkt.warpTs = 1;
        pkt.wts = 0;
        pkt.epoch = domain_.epoch();
        pkt.tsReset = true;
    }
}

void
GtscL2::tickQueue(Cycle now)
{
    (*queueCycles_) += queue_.size();
    for (unsigned i = 0; i < ports_ && !queue_.empty(); ++i) {
        if (!process(queue_.front(), now)) {
            ++(*stallMshrFull_);
            break;
        }
        queue_.pop_front();
    }
}

bool
GtscL2::process(mem::Packet &pkt, Cycle now)
{
    normalizeEpoch(pkt);
    ++(*accesses_);
    if (pkt.injectedAt > 0) {
        serviceLatency_->sample(static_cast<double>(now - pkt.injectedAt));
        pkt.injectedAt = 0; // waiter replays sample only once
    }
    GTSC_DEBUG("L2[", part_, "] @", now, " <- ", pkt.toString(),
               " mem_ts=", memTs_);

    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (blk) {
        ++(*hits_);
        serveHit(*blk, pkt, now);
        return true;
    }

    // Miss: merge into an outstanding fetch or start one.
    if (MissEntry *pending = misses_.find(pkt.lineAddr)) {
        pending->waiters.push_back(pkt);
        return true;
    }
    if (misses_.size() >= mshrCapacity_)
        return false;

    ++(*missesStat_);
    MissEntry &entry = misses_.emplace(pkt.lineAddr);
    entry.waiters.clear(); // recycled slot: stale waiters possible
    entry.waiters.push_back(pkt);
    Addr line = pkt.lineAddr;
    dram_.pushRead(line, [this, line](const mem::LineData &data) {
        // Runs from the event queue: events_.now() is the fill cycle.
        onDramFill(line, data, events_.now());
    });
    return true;
}

void
GtscL2::serveHit(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now)
{
    if (pkt.type == mem::MsgType::BusRd)
        serveRead(blk, pkt, now);
    else if (pkt.type == mem::MsgType::BusWr)
        serveWrite(blk, pkt, now);
    else
        GTSC_PANIC("L2 received response-type packet ", pkt.toString());
}

void
GtscL2::serveRead(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now)
{
    bool is_renewal = (pkt.wts != 0 && pkt.wts == blk.meta.wts);
    if (mutRenewMismatch_)
        is_renewal = (pkt.wts != 0); // broken: renew stale copies too

    // Adaptive lease (Tardis-2.0-style prediction): blocks that keep
    // getting renewed without intervening stores earn exponentially
    // longer leases, trading renewal traffic for faster timestamp
    // rollover.
    Ts lease = domain_.lease();
    if (adaptiveLease_) {
        unsigned shift = std::min<unsigned>(blk.meta.renewStreak, 16);
        Ts grown = lease << shift;
        lease = std::min(grown, maxLease_);
        if (is_renewal && blk.meta.renewStreak < 255) {
            ++blk.meta.renewStreak;
            ++(*adaptiveExtensions_);
        }
    }

    Ts new_rts = std::max(blk.meta.rts, pkt.warpTs + lease);
    if (new_rts > domain_.tsMax()) {
        // Overflow: domain-wide reset, then recompute in the new
        // epoch. The requester's old timestamps are void.
        domain_.triggerReset(now);
        normalizeEpoch(pkt);
        pkt.tsReset = true;
        // The requester's wts is void in the new epoch: never a
        // renewal (normalizeEpoch zeroed pkt.wts).
        is_renewal = false;
        new_rts = std::max(blk.meta.rts, pkt.warpTs + lease);
    }
    if (trace_ && new_rts > blk.meta.rts) {
        trace_->record(track_,
                       obs::Event{now, pkt.lineAddr, blk.meta.rts,
                                  new_rts, obs::EventKind::LeaseExtend,
                                  pkt.src, pkt.warp});
    }
    blk.meta.rts = new_rts;
    array_.touch(blk);

    mem::Packet resp;
    resp.lineAddr = pkt.lineAddr;
    resp.src = pkt.src;
    resp.part = part_;
    resp.warp = pkt.warp;
    resp.rts = new_rts;
    resp.epoch = domain_.epoch();
    resp.tsReset = pkt.tsReset;
    resp.reqId = pkt.reqId;

    if (is_renewal) {
        // Data unchanged since the requester's copy: renew only.
        resp.type = mem::MsgType::BusRnw;
        resp.sizeBytes = gtscMessageBytes(mem::MsgType::BusRnw,
                                          domain_.tsBytes(), 0);
        ++(*renewals_);
    } else {
        resp.type = mem::MsgType::BusFill;
        resp.wts = blk.meta.wts;
        resp.data = array_.dataOf(blk);
        resp.sizeBytes = gtscMessageBytes(mem::MsgType::BusFill,
                                          domain_.tsBytes(), 0);
        ++(*fillsSent_);
    }
    respond(std::move(resp), now);
}

void
GtscL2::serveWrite(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now)
{
    Ts prev_wts = blk.meta.wts;
    // The paper's write rule: the new version is logically ordered
    // after every outstanding lease (wts' = max(rts+1, warp_ts)).
    // The write_ignores_lease mutation orders it only after the
    // current version — the classic timestamp-protocol bug the
    // verification lab must catch.
    Ts write_floor =
        mutWriteIgnoresLease_ ? blk.meta.wts + 1 : blk.meta.rts + 1;
    Ts new_wts = std::max(write_floor, pkt.warpTs);
    Ts new_rts = new_wts + domain_.lease();
    if (new_rts > domain_.tsMax()) {
        domain_.triggerReset(now);
        normalizeEpoch(pkt);
        pkt.tsReset = true;
        write_floor = mutWriteIgnoresLease_ ? blk.meta.wts + 1
                                            : blk.meta.rts + 1;
        new_wts = std::max(write_floor, pkt.warpTs);
        new_rts = new_wts + domain_.lease();
    }

    array_.dataOf(blk).mergeMasked(pkt.data, pkt.wordMask);
    blk.meta.wts = new_wts;
    blk.meta.rts = new_rts;
    blk.meta.renewStreak = 0; // data changed: restart prediction
    blk.dirty = true;
    array_.touch(blk);
    ++(*writes_);
    if (trace_) {
        trace_->record(track_,
                       obs::Event{now, pkt.lineAddr, new_wts, new_rts,
                                  obs::EventKind::WtsUpdate, pkt.src,
                                  pkt.warp});
    }

    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (pkt.wordMask & (1u << w)) {
                probe_->onStoreTs(pkt.lineAddr + w * mem::kWordBytes,
                                  domain_.epoch(), new_wts,
                                  pkt.data.word(w), pkt.src, pkt.warp);
            }
        }
    }

    mem::Packet resp;
    resp.type = mem::MsgType::BusWrAck;
    resp.lineAddr = pkt.lineAddr;
    resp.src = pkt.src;
    resp.part = part_;
    resp.warp = pkt.warp;
    resp.wts = new_wts;
    resp.rts = new_rts;
    resp.prevWts = prev_wts;
    resp.epoch = domain_.epoch();
    resp.tsReset = pkt.tsReset;
    resp.reqId = pkt.reqId;
    resp.sizeBytes =
        gtscMessageBytes(mem::MsgType::BusWrAck, domain_.tsBytes(), 0);
    respond(std::move(resp), now);
}

void
GtscL2::evict(mem::CacheBlock &blk)
{
    // Non-inclusive: fold the lease into mem_ts so future stores to
    // this line are logically ordered after every outstanding copy.
    memTs_ = std::max(memTs_, blk.meta.rts);
    ++(*evictions_);
    if (blk.dirty) {
        ++(*writebacks_);
        dram_.pushWrite(blk.lineAddr, array_.dataOf(blk),
                        0xffffffffu);
    }
    array_.invalidate(blk);
}

void
GtscL2::onDramFill(Addr line, const mem::LineData &data, Cycle now)
{
    mem::CacheBlock *victim = array_.victim(line);
    GTSC_ASSERT(victim, "G-TSC L2 victim selection cannot fail");
    if (victim->valid)
        evict(*victim);
    array_.insert(*victim, line);
    array_.dataOf(*victim) = data;

    if (memTs_ + domain_.lease() > domain_.tsMax()) {
        domain_.triggerReset(now); // rewinds memTs_ to 1
    }
    victim->meta.wts = memTs_;
    victim->meta.rts = memTs_ + domain_.lease();

    MissEntry *entry = misses_.find(line);
    GTSC_ASSERT(entry, "DRAM fill without miss entry");
    // Swap the waiters into the member scratch so their buffer
    // circulates back into the pool instead of being freed here.
    waitersScratch_.clear();
    waitersScratch_.swap(entry->waiters);
    misses_.erase(line);
    for (auto &w : waitersScratch_)
        serveHit(*victim, w, now);
}

L2VerifyState
GtscL2::captureVerifyState()
{
    GTSC_ASSERT(quiescent(), "L2 verify capture while busy");
    L2VerifyState s;
    array_.forEachValid([this, &s](mem::CacheBlock &blk) {
        VerifyLineState l;
        l.lineAddr = blk.lineAddr;
        l.dirty = blk.dirty;
        l.meta = blk.meta;
        l.data = array_.dataOf(blk);
        s.lines.push_back(std::move(l));
    });
    std::sort(s.lines.begin(), s.lines.end(),
              [](const VerifyLineState &a, const VerifyLineState &b) {
                  return a.lineAddr < b.lineAddr;
              });
    s.memTs = memTs_;
    return s;
}

void
GtscL2::restoreVerifyState(const L2VerifyState &s)
{
    GTSC_ASSERT(quiescent(), "L2 verify restore while busy");
    array_.invalidateAll();
    for (const VerifyLineState &l : s.lines) {
        mem::CacheBlock *blk = array_.victim(l.lineAddr);
        GTSC_ASSERT(blk && !blk->valid,
                    "verify restore must never capacity-evict");
        array_.insert(*blk, l.lineAddr);
        blk->dirty = l.dirty;
        blk->meta = l.meta;
        array_.dataOf(*blk) = l.data;
    }
    memTs_ = s.memTs;
}

bool
GtscL2::verifyEvictLine(Addr line_addr)
{
    mem::CacheBlock *blk = array_.lookup(line_addr);
    if (!blk)
        return false;
    evict(*blk);
    return true;
}

void
GtscL2::respond(mem::Packet &&resp, Cycle now)
{
    std::uint32_t slot = respPool_.acquire();
    respPool_[slot] = std::move(resp);
    events_.schedule(now + accessLatency_, [this, slot]() {
        send_(std::move(respPool_[slot]));
        respPool_.release(slot);
    });
}

} // namespace gtsc::core
