/**
 * @file
 * The logical-timestamp domain shared by every G-TSC controller.
 *
 * Section V-D: timestamps are narrow (16 bits by default). When an
 * update at any L2 bank would exceed the maximum, the bank signals a
 * reset: every L2 bank rewinds its block timestamps (wts=1,
 * rts=lease) and its memory timestamp, and a new epoch begins. L1
 * caches notice the epoch change lazily (on their next access or
 * response), flush, and reset their warp timestamps — mirroring the
 * paper's reset message piggybacked on responses.
 */

#ifndef GTSC_CORE_TS_DOMAIN_HH_
#define GTSC_CORE_TS_DOMAIN_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/gtsc_state.hh"
#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::core
{

class TsDomain
{
  public:
    TsDomain(const sim::Config &cfg, sim::StatSet &stats)
        : tsResets_(&stats.counter("gtsc.ts_resets"))
    {
        unsigned width =
            static_cast<unsigned>(cfg.getUint("gtsc.ts_bits", 16));
        if (width < 4 || width > 62)
            GTSC_FATAL("gtsc.ts_bits must be in [4,62], got ", width);
        tsMax_ = (Ts{1} << width) - 1;
        lease_ = cfg.getUint("gtsc.lease", 10);
        if (lease_ == 0 || lease_ * 4 > tsMax_)
            GTSC_FATAL("gtsc.lease=", lease_,
                       " must be in [1, tsMax/4] for ts_bits");
        tsBytes_ = (width + 7) / 8;
    }

    Ts tsMax() const { return tsMax_; }
    Ts lease() const { return lease_; }
    unsigned tsBytes() const { return tsBytes_; }
    std::uint32_t epoch() const { return epoch_; }

    /**
     * The epoch as of cycle `c`. L1s must use this (not epoch()) for
     * their lazy reset check: under gpu.shards the coordinator ticks
     * the L2s a whole window ahead of the SM shards, so a reset can
     * already be recorded for a cycle the querying L1 has not reached
     * yet — reading epoch() there would adopt the reset early and
     * diverge from the serial loop. Resets are rare, so the
     * back-to-front scan over the few recorded cycles is cheaper
     * than it looks.
     */
    std::uint32_t
    epochAt(Cycle c) const
    {
        std::uint32_t e = epoch_;
        for (auto it = resetCycles_.rbegin();
             it != resetCycles_.rend() && *it > c; ++it)
            --e;
        return e;
    }

    /** L2 banks register their rewind action here. */
    void
    addResetListener(std::function<void()> fn)
    {
        listeners_.push_back(std::move(fn));
    }

    /**
     * An L2 bank hit the timestamp ceiling at cycle `now`: start a
     * new epoch and rewind every bank. Callers recompute their
     * timestamps in the new epoch afterwards. L2-side only — the
     * shards never write the domain, which is what makes the
     * concurrent epochAt() reads safe (the barrier orders a window's
     * writes before the next window's reads).
     */
    void
    triggerReset(Cycle now)
    {
        GTSC_ASSERT(resetCycles_.empty() || resetCycles_.back() <= now,
                    "ts reset cycles must be recorded in order");
        ++epoch_;
        ++(*tsResets_);
        resetCycles_.push_back(now);
        for (auto &fn : listeners_)
            fn();
    }

    /**
     * Snapshot the domain (verification lab). At a settled snapshot
     * every recorded reset is in the past, so the epoch alone fully
     * describes the domain's future behaviour.
     */
    TsDomainVerifyState
    captureVerifyState() const
    {
        return TsDomainVerifyState{epoch_};
    }

    /**
     * Restore a snapshot. Discards the recorded reset cycles:
     * epochAt(c) then returns the restored epoch for every c, which
     * is exactly the settled snapshot's behaviour (all resets were
     * already visible). Listeners are NOT fired — the caller
     * restores every component's state explicitly.
     */
    void
    restoreVerifyState(const TsDomainVerifyState &s)
    {
        epoch_ = s.epoch;
        resetCycles_.clear();
    }

  private:
    std::uint64_t *tsResets_;
    Ts tsMax_ = 0;
    Ts lease_ = 0;
    unsigned tsBytes_ = 2;
    std::uint32_t epoch_ = 0;
    std::vector<Cycle> resetCycles_;
    std::vector<std::function<void()>> listeners_;
};

} // namespace gtsc::core

#endif // GTSC_CORE_TS_DOMAIN_HH_
