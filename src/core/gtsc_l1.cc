#include "core/gtsc_l1.hh"

#include <algorithm>

#include <string>

#include "core/gtsc_messages.hh"
#include "obs/tracer.hh"
#include "sim/log.hh"

namespace gtsc::core
{

GtscL1::GtscL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
               sim::EventQueue &events, TsDomain &domain,
               mem::CoherenceProbe *probe)
    : sm_(sm), stats_(stats), events_(events), domain_(domain),
      probe_(probe),
      array_(cfg.getUint("l1.size_bytes", 16 * 1024),
             cfg.getUint("l1.assoc", 4)),
      mshr_(cfg.getUint("l1.mshr_entries", 32))
{
    warpTs_.assign(cfg.getUint("gpu.warps_per_sm", 48), 1);
    numPartitions_ =
        static_cast<unsigned>(cfg.getUint("gpu.num_partitions", 8));
    hitLatency_ = std::max<Cycle>(1, cfg.getUint("l1.hit_latency", 4));
    combine_ = cfg.getBool("gtsc.combine_mshr", true);
    std::string vis = cfg.getString("gtsc.update_visibility", "block");
    if (vis == "block")
        visibility_ = Visibility::Block;
    else if (vis == "dualcopy")
        visibility_ = Visibility::DualCopy;
    else if (vis == "writebuffer")
        visibility_ = Visibility::WriteBuffer;
    else
        GTSC_FATAL("gtsc.update_visibility must be "
                   "block|dualcopy|writebuffer, got '",
                   vis, "'");
    writeBufferEntries_ = cfg.getUint("gtsc.write_buffer_entries", 8);
    spinBoost_ = cfg.getUint("gtsc.spin_ts_boost", domain_.lease());

    hits_ = &stats_.counter("l1.hits");
    missCold_ = &stats_.counter("l1.miss_cold");
    missExpired_ = &stats_.counter("l1.miss_expired");
    merged_ = &stats_.counter("l1.merged");
    renewalsSent_ = &stats_.counter("l1.renewals_sent");
    busRdSent_ = &stats_.counter("l1.busrd_sent");
    busWrSent_ = &stats_.counter("l1.buswr_sent");
    fillBypass_ = &stats_.counter("l1.fill_bypass");
    lockParks_ = &stats_.counter("l1.lock_parks");
    tagAccesses_ = &stats_.counter("l1.tag_accesses");
    dataReads_ = &stats_.counter("l1.data_reads");
    dataWrites_ = &stats_.counter("l1.data_writes");
    rejects_ = &stats_.counter("l1.rejects_mshr_full");
    staleResponses_ = &stats_.counter("l1.stale_epoch_responses");
    wbFullRejects_ = &stats_.counter("l1.wb_full_rejects");
    replayHits_ = &stats_.counter("l1.replay_hits");
    wbForwards_ = &stats_.counter("l1.wb_forwards");
    storeBaseStale_ = &stats_.counter("l1.store_base_stale");
}

void
GtscL1::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("l1.sm" + std::to_string(sm_));
    mshr_.setTrace(&tracer, track_, &events_);
}

void
GtscL1::adoptEpoch()
{
    // Cycle-indexed read: under gpu.shards the domain can already
    // hold a reset from a future cycle of the current window.
    std::uint32_t visible = domain_.epochAt(events_.now());
    if (epoch_ == visible)
        return;
    epoch_ = visible;
    array_.invalidateAll();
    std::fill(warpTs_.begin(), warpTs_.end(), Ts{1});
    if (trace_) {
        trace_->record(track_, obs::Event{events_.now(), 0, epoch_, 0,
                                          obs::EventKind::EpochReset, 0,
                                          0});
    }
}

void
GtscL1::noteSpinRetry(WarpId warp, Addr line_addr)
{
    (void)line_addr;
    adoptEpoch();
    warpTs_[warp] = std::min(warpTs_[warp] + spinBoost_, domain_.tsMax());
}

bool
GtscL1::quiescent() const
{
    return mshr_.size() == 0 && pendingStores_.empty() &&
           replayQueue_.empty();
}

void
GtscL1::flush(Cycle now)
{
    (void)now;
    GTSC_ASSERT(quiescent(), "L1 flush while busy");
    array_.invalidateAll();
    std::fill(warpTs_.begin(), warpTs_.end(), Ts{1});
}

L1VerifyState
GtscL1::captureVerifyState()
{
    L1VerifyState s;
    array_.forEachValid([this, &s](mem::CacheBlock &blk) {
        VerifyLineState l;
        l.lineAddr = blk.lineAddr;
        l.dirty = blk.dirty;
        l.meta = blk.meta;
        l.data = array_.dataOf(blk);
        s.lines.push_back(std::move(l));
    });
    std::sort(s.lines.begin(), s.lines.end(),
              [](const VerifyLineState &a, const VerifyLineState &b) {
                  return a.lineAddr < b.lineAddr;
              });
    s.warpTs = warpTs_;
    s.epoch = epoch_;
    pendingStores_.forEach(
        [&s](std::uint64_t id, const PendingStore &ps) {
            s.pendingStores.push_back({id, ps.access, ps.baseWts,
                                       ps.hadBlock});
        });
    std::sort(s.pendingStores.begin(), s.pendingStores.end(),
              [](const auto &a, const auto &b) { return a.id < b.id; });
    storeByLine_.forEach([&s](Addr line, std::uint64_t id) {
        s.storeByLine.emplace_back(line, id);
    });
    std::sort(s.storeByLine.begin(), s.storeByLine.end());
    mshr_.forEach([&s](const mem::MshrEntry &e) {
        L1VerifyState::MshrEntryState m;
        m.lineAddr = e.lineAddr;
        m.requestSent = e.requestSent;
        m.outstanding = e.outstanding;
        m.lockWait = e.lockWait;
        m.requestWts = e.requestWts;
        m.waiters = e.waiters;
        s.mshr.push_back(std::move(m));
    });
    std::sort(s.mshr.begin(), s.mshr.end(),
              [](const auto &a, const auto &b) {
                  return a.lineAddr < b.lineAddr;
              });
    for (std::size_t i = 0; i < replayQueue_.size(); ++i)
        s.replayQueue.push_back(replayQueue_[i]);
    return s;
}

void
GtscL1::restoreVerifyState(const L1VerifyState &s)
{
    array_.invalidateAll();
    for (const VerifyLineState &l : s.lines) {
        mem::CacheBlock *blk = array_.victim(l.lineAddr);
        GTSC_ASSERT(blk && !blk->valid,
                    "verify restore must never capacity-evict");
        array_.insert(*blk, l.lineAddr);
        blk->dirty = l.dirty;
        blk->meta = l.meta;
        array_.dataOf(*blk) = l.data;
    }
    warpTs_ = s.warpTs;
    epoch_ = s.epoch;
    pendingStores_.clear();
    for (const auto &ps : s.pendingStores) {
        PendingStore &p = pendingStores_[ps.id];
        p.access = ps.access;
        p.baseWts = ps.baseWts;
        p.hadBlock = ps.hadBlock;
    }
    storeByLine_.clear();
    for (const auto &[line, id] : s.storeByLine)
        storeByLine_[line] = id;
    mshr_.clear();
    for (const auto &m : s.mshr) {
        mem::MshrEntry *e = mshr_.alloc(m.lineAddr);
        GTSC_ASSERT(e, "verify restore exceeded MSHR capacity");
        e->requestSent = m.requestSent;
        e->outstanding = m.outstanding;
        e->lockWait = m.lockWait;
        e->requestWts = m.requestWts;
        e->waiters = m.waiters;
    }
    replayQueue_.clear();
    for (const mem::Access &a : s.replayQueue)
        replayQueue_.push_back(a);
}

bool
GtscL1::verifyEvictLine(Addr line_addr)
{
    if (storeByLine_.contains(line_addr))
        return false;
    mem::CacheBlock *blk = array_.lookup(line_addr);
    if (!blk)
        return false;
    array_.invalidate(*blk);
    return true;
}

bool
GtscL1::access(const mem::Access &acc, Cycle now)
{
    adoptEpoch();
    ++(*tagAccesses_);
    GTSC_DEBUG("L1[", sm_, "] @", now, " ",
               acc.isStore ? "store" : "load", " line=0x", std::hex,
               acc.lineAddr, std::dec, " warp=", acc.warp,
               " warp_ts=", warpTs_[acc.warp]);

    // Per-line ordering: anything parked on this line goes behind it.
    if (mem::MshrEntry *entry = mshr_.find(acc.lineAddr)) {
        entry->waiters.push_back(acc);
        ++(*merged_);
        // Forward-all mode sends a request per load even when one is
        // already outstanding (Section V-B trade-off).
        if (!combine_ && !entry->lockWait && !acc.isStore) {
            sendBusRd(acc.lineAddr, entry->requestWts,
                      warpTs_[acc.warp], acc.warp);
            ++entry->outstanding;
        }
        return true;
    }

    mem::CacheBlock *blk = array_.lookup(acc.lineAddr);
    if (acc.isStore)
        return handleStore(acc, blk, now);
    return handleLoad(acc, blk, now);
}

bool
GtscL1::parkBehindStore(const mem::Access &acc)
{
    mem::MshrEntry *entry = mshr_.alloc(acc.lineAddr);
    if (!entry) {
        ++(*rejects_);
        return false;
    }
    entry->lockWait = true;
    entry->waiters.push_back(acc);
    ++(*lockParks_);
    return true;
}

bool
GtscL1::handleLoad(const mem::Access &acc, mem::CacheBlock *blk,
                   Cycle now)
{
    const std::uint64_t *store_id = storeByLine_.find(acc.lineAddr);
    const PendingStore *pending = nullptr;
    if (store_id) {
        // A store to this line is awaiting its ack (Section V-A).
        pending = pendingStores_.find(*store_id);
        GTSC_ASSERT(pending, "dangling store-by-line");
        switch (visibility_) {
          case Visibility::Block:
            return parkBehindStore(acc); // option 1: block everyone
          case Visibility::DualCopy:
            if (pending->access.warp == acc.warp)
                return parkBehindStore(acc); // writer waits
            // other warps read the old copy below
            break;
          case Visibility::WriteBuffer:
            // Nobody waits: other warps read the old copy; the
            // writer forwards from the buffered store below.
            break;
        }
    }

    if (blk && warpTs_[acc.warp] <= blk->meta.rts) {
        bool forward = visibility_ == Visibility::WriteBuffer &&
                       pending &&
                       pending->access.warp == acc.warp;
        completeLoadHit(acc, *blk, now,
                        forward ? &pending->access : nullptr);
        return true;
    }

    // Miss: cold (no tag) or expired lease for this warp.
    mem::MshrEntry *entry = mshr_.alloc(acc.lineAddr);
    if (!entry) {
        ++(*rejects_);
        return false;
    }
    Ts req_wts = blk ? blk->meta.wts : Ts{0};
    if (!acc.replayed) {
        if (blk) {
            ++(*missExpired_);
            if (trace_) {
                trace_->record(
                    track_, obs::Event{now, acc.lineAddr, blk->meta.wts,
                                       blk->meta.rts,
                                       obs::EventKind::L1MissExpired,
                                       acc.warp, 0});
            }
        } else {
            ++(*missCold_);
            if (trace_) {
                trace_->record(track_,
                               obs::Event{now, acc.lineAddr, 0, 0,
                                          obs::EventKind::L1MissCold,
                                          acc.warp, 0});
            }
        }
    }
    entry->requestWts = req_wts;
    entry->requestSent = true;
    entry->outstanding = 1;
    entry->waiters.push_back(acc);
    sendBusRd(acc.lineAddr, req_wts, warpTs_[acc.warp], acc.warp);
    return true;
}

bool
GtscL1::handleStore(const mem::Access &acc, mem::CacheBlock *blk,
                    Cycle now)
{
    (void)now;
    if (storeByLine_.contains(acc.lineAddr))
        return parkBehindStore(acc); // one store in flight per line

    // Write-buffer mode: bounded entries model the LDST-unit area
    // cost the paper quantifies (~200 outstanding writes per store
    // instruction at full occupancy).
    if (visibility_ == Visibility::WriteBuffer &&
        pendingStores_.size() >= writeBufferEntries_) {
        ++(*wbFullRejects_);
        return false;
    }

    PendingStore ps;
    ps.access = acc;
    if (blk) {
        // Write-through with local update. Option 1 exposes the new
        // data but blocks the line; options 2/3 keep the old copy
        // readable and merge on ack.
        if (visibility_ == Visibility::Block)
            array_.dataOf(*blk).mergeMasked(acc.storeData,
                                            acc.wordMask);
        ps.hadBlock = true;
        ps.baseWts = blk->meta.wts;
        ++(*dataWrites_);
    }
    storeByLine_[acc.lineAddr] = acc.id;
    pendingStores_[acc.id] = ps;

    mem::Packet pkt;
    pkt.type = mem::MsgType::BusWr;
    pkt.lineAddr = acc.lineAddr;
    pkt.src = sm_;
    pkt.part = mem::partitionOf(acc.lineAddr, numPartitions_);
    pkt.warp = acc.warp;
    pkt.warpTs = warpTs_[acc.warp];
    pkt.epoch = epoch_;
    pkt.wordMask = acc.wordMask;
    pkt.data = acc.storeData;
    pkt.reqId = acc.id;
    pkt.sizeBytes = gtscMessageBytes(mem::MsgType::BusWr,
                                     domain_.tsBytes(), acc.wordMask);
    ++(*busWrSent_);
    send_(std::move(pkt));
    return true;
}

void
GtscL1::sendBusRd(Addr line, Ts req_wts, Ts warp_ts, WarpId warp)
{
    mem::Packet pkt;
    pkt.type = mem::MsgType::BusRd;
    pkt.lineAddr = line;
    pkt.src = sm_;
    pkt.part = mem::partitionOf(line, numPartitions_);
    pkt.warp = warp;
    pkt.wts = req_wts;
    pkt.warpTs = warp_ts;
    pkt.epoch = epoch_;
    pkt.sizeBytes =
        gtscMessageBytes(mem::MsgType::BusRd, domain_.tsBytes(), 0);
    ++(*busRdSent_);
    if (req_wts != 0) {
        ++(*renewalsSent_);
        if (trace_) {
            trace_->record(track_,
                           obs::Event{events_.now(), line, req_wts, 0,
                                      obs::EventKind::L1Renewal, warp,
                                      0});
        }
    }
    send_(std::move(pkt));
}

void
GtscL1::completeLoadHit(const mem::Access &acc,
                        const mem::CacheBlock &blk, Cycle now,
                        const mem::Access *forward)
{
    if (acc.replayed)
        ++(*replayHits_);
    else
        ++(*hits_);
    ++(*dataReads_);
    if (trace_) {
        trace_->record(track_,
                       obs::Event{now, acc.lineAddr, blk.meta.wts,
                                  blk.meta.rts, obs::EventKind::L1Hit,
                                  acc.warp, 0});
    }
    Ts load_ts = std::max(warpTs_[acc.warp], blk.meta.wts);
    warpTs_[acc.warp] = load_ts;

    std::uint32_t slot = loadReplies_.acquire();
    LoadReply &rec = loadReplies_[slot];
    rec.acc = acc;
    mem::AccessResult &res = rec.res;
    res.data = array_.dataOf(blk);
    res.l1Hit = true;
    res.loadTs = load_ts;
    res.epoch = epoch_;
    res.leaseGrant = 0; // recycled slot: reset every field

    std::uint32_t forwarded_mask = 0;
    if (forward) {
        forwarded_mask = forward->wordMask;
        res.data.mergeMasked(forward->storeData, forwarded_mask);
        ++(*wbForwards_);
    }

    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            // Forwarded words are the warp's own pending store —
            // register traffic, not a memory observation.
            if ((acc.wordMask & (1u << w)) &&
                !(forwarded_mask & (1u << w))) {
                probe_->onLoadTs(acc.lineAddr + w * mem::kWordBytes,
                                 epoch_, load_ts, res.data.word(w), sm_,
                                 acc.warp);
            }
        }
    }
    events_.schedule(now + hitLatency_, [this, slot]() {
        LoadReply &r = loadReplies_[slot];
        loadDone_(r.acc, r.res);
        loadReplies_.release(slot);
    });
}

void
GtscL1::completeLoadFromPacket(const mem::Access &acc,
                               const mem::Packet &pkt, Cycle now)
{
    Ts load_ts = std::max(warpTs_[acc.warp], pkt.wts);
    GTSC_ASSERT(load_ts <= pkt.rts, "bypass load outside lease");
    warpTs_[acc.warp] = load_ts;

    std::uint32_t slot = loadReplies_.acquire();
    LoadReply &rec = loadReplies_[slot];
    rec.acc = acc;
    mem::AccessResult &res = rec.res;
    res.data = pkt.data;
    res.l1Hit = false;
    res.loadTs = load_ts;
    res.epoch = epoch_;
    res.leaseGrant = 0; // recycled slot: reset every field

    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (acc.wordMask & (1u << w)) {
                probe_->onLoadTs(acc.lineAddr + w * mem::kWordBytes,
                                 epoch_, load_ts, res.data.word(w), sm_,
                                 acc.warp);
            }
        }
    }
    events_.schedule(now + 1, [this, slot]() {
        LoadReply &r = loadReplies_[slot];
        loadDone_(r.acc, r.res);
        loadReplies_.release(slot);
    });
}

void
GtscL1::queueReplay(std::vector<mem::Access> &waiters)
{
    for (auto &w : waiters) {
        w.replayed = true;
        replayQueue_.push_back(std::move(w));
    }
    waiters.clear();
}

void
GtscL1::receiveResponse(mem::Packet &&pkt, Cycle now)
{
    GTSC_DEBUG("L1[", sm_, "] @", now, " <- ", pkt.toString());
    if (pkt.tsReset || pkt.epoch > epoch_)
        adoptEpoch();

    bool stale = pkt.epoch < domain_.epochAt(now);
    if (stale)
        ++(*staleResponses_);

    switch (pkt.type) {
      case mem::MsgType::BusFill:
        if (stale) {
            // A pre-reset fill may predate stores that happened
            // before the reset, so it cannot stand in for the new
            // epoch's base version. Drop it; waiters re-request.
            resolveEntry(mshr_.find(pkt.lineAddr), nullptr, nullptr,
                         now);
            break;
        }
        onFill(pkt, now);
        break;
      case mem::MsgType::BusRnw:
        onRenew(pkt, now);
        break;
      case mem::MsgType::BusWrAck:
        onWrAck(pkt, now);
        break;
      default:
        GTSC_PANIC("L1 received request-type packet ", pkt.toString());
    }
    // Resolving an MSHR entry may queue replays — the only way this
    // controller acquires tick() work (wake contract).
    if (!replayQueue_.empty())
        wake(now);
}

void
GtscL1::onFill(mem::Packet &pkt, Cycle now)
{
    mem::MshrEntry *entry = mshr_.find(pkt.lineAddr);

    // Never clobber a line whose store is awaiting its ack: the local
    // copy (and its pending meta update) owns the line until then.
    // Loads the packet's lease covers may still complete from it.
    if (storeByLine_.contains(pkt.lineAddr)) {
        resolveEntry(entry, nullptr, &pkt, now);
        return;
    }

    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (!blk) {
        auto evictable = [this](const mem::CacheBlock &b) {
            return !storeByLine_.contains(b.lineAddr);
        };
        mem::CacheBlock *victim = array_.victim(pkt.lineAddr, evictable);
        if (victim) {
            // L1 is write-through: evicted lines are simply dropped.
            array_.insert(*victim, pkt.lineAddr);
            blk = victim;
        }
    }
    if (blk) {
        array_.dataOf(*blk) = pkt.data;
        blk->meta.wts = pkt.wts;
        blk->meta.rts = pkt.rts;
        blk->meta.epoch = pkt.epoch;
        array_.touch(*blk);
    } else {
        ++(*fillBypass_);
    }

    resolveEntry(entry, blk, &pkt, now);
}

/**
 * A response for this line arrived: complete every waiter the
 * current lease covers directly; waiters that still need a renewal
 * stay in the entry while more responses are outstanding
 * (forward-all) or re-enter access() to issue one (combining).
 */
void
GtscL1::resolveEntry(mem::MshrEntry *entry, mem::CacheBlock *blk,
                     const mem::Packet *pkt, Cycle now)
{
    if (!entry || entry->lockWait)
        return;
    if (entry->outstanding > 0)
        --entry->outstanding;

    // Complete covered loads in arrival order, but stop at the
    // first store: accesses queued behind a store must replay after
    // it performs (a same-warp load behind its own store must never
    // observe the pre-store value).
    std::vector<mem::Access> &remaining = resolveScratch_;
    remaining.clear();
    bool hit_store = false;
    for (auto &acc : entry->waiters) {
        if (!hit_store && !acc.isStore) {
            acc.replayed = true; // classified at first probe already
            if (blk && std::max(warpTs_[acc.warp], blk->meta.wts) <=
                           blk->meta.rts) {
                completeLoadHit(acc, *blk, now);
                continue;
            }
            if (!blk && pkt &&
                std::max(warpTs_[acc.warp], pkt->wts) <= pkt->rts) {
                completeLoadFromPacket(acc, *pkt, now);
                continue;
            }
        }
        hit_store |= acc.isStore;
        remaining.push_back(std::move(acc));
    }

    Addr line = entry->lineAddr;
    if (remaining.empty()) {
        mshr_.free(line);
    } else if (entry->outstanding == 0) {
        // No response still in flight: the leftovers re-enter
        // access() and trigger a (single) renewal request.
        mshr_.free(line);
        queueReplay(remaining);
    } else {
        // Swap so the entry keeps a recycled buffer and the scratch
        // inherits the entry's old one for the next resolve.
        entry->waiters.swap(remaining);
    }
}

void
GtscL1::onRenew(mem::Packet &pkt, Cycle now)
{
    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    bool stale = pkt.epoch < epoch_;
    if (blk && !stale && blk->meta.rts < pkt.rts)
        blk->meta.rts = pkt.rts;

    resolveEntry(mshr_.find(pkt.lineAddr), blk, nullptr, now);
}

void
GtscL1::onWrAck(mem::Packet &pkt, Cycle now)
{
    (void)now;
    PendingStore *psp = pendingStores_.find(pkt.reqId);
    GTSC_ASSERT(psp, "BusWrAck without pending store, reqId=", pkt.reqId);
    PendingStore ps = *psp;
    mem::Access acc = ps.access;
    pendingStores_.erase(pkt.reqId);

    std::uint64_t *line_id = storeByLine_.find(pkt.lineAddr);
    if (line_id && *line_id == pkt.reqId)
        storeByLine_.erase(pkt.lineAddr);

    bool stale = pkt.epoch < epoch_;
    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (blk && !stale) {
        // The merged line is only the true new version if the store
        // was applied on top of exactly the version we merged into;
        // otherwise another SM's store interleaved and our unwritten
        // words are stale — self-invalidate.
        if (ps.hadBlock && ps.baseWts == pkt.prevWts &&
            blk->meta.wts <= pkt.wts) {
            if (visibility_ != Visibility::Block) // 2/3 merge on ack
                array_.dataOf(*blk).mergeMasked(acc.storeData,
                                                acc.wordMask);
            blk->meta.wts = pkt.wts;
            blk->meta.rts = pkt.rts;
            blk->meta.epoch = pkt.epoch;
        } else {
            array_.invalidate(*blk);
            ++(*storeBaseStale_);
        }
    }
    if (!stale)
        warpTs_[acc.warp] = std::max(warpTs_[acc.warp], pkt.wts);

    storeDone_(acc, 0);

    if (mem::MshrEntry *entry = mshr_.find(pkt.lineAddr)) {
        if (entry->lockWait) {
            resolveScratch_.clear();
            resolveScratch_.swap(entry->waiters);
            mshr_.free(pkt.lineAddr);
            queueReplay(resolveScratch_);
        }
    }
}

} // namespace gtsc::core
