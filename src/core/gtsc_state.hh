/**
 * @file
 * Snapshottable architectural state of the G-TSC controllers.
 *
 * The verification lab (src/verify) model-checks the real FSMs by
 * DFS over simulator states: it captures a controller's complete
 * protocol-visible state at settled points (event queue empty, all
 * in-flight messages held by the harness), explores one transition,
 * and restores. These structs are that state, exactly — anything a
 * controller consults when deciding a future transition must be
 * here, and anything that is pure diagnostics (stats, LRU stamps,
 * tracer hooks) must not.
 *
 * Capture orders every collection deterministically (sorted by key)
 * so two captures of behaviourally identical states serialize
 * identically.
 */

#ifndef GTSC_CORE_GTSC_STATE_HH_
#define GTSC_CORE_GTSC_STATE_HH_

#include <cstdint>
#include <utility>
#include <vector>

#include "mem/access.hh"
#include "mem/cache_array.hh"
#include "sim/types.hh"

namespace gtsc::core
{

/** One resident cache line (L1 or L2). */
struct VerifyLineState
{
    Addr lineAddr = 0;
    bool dirty = false;
    mem::BlockMeta meta;
    mem::LineData data;
};

/** Complete protocol-visible state of one GtscL1. */
struct L1VerifyState
{
    struct PendingStoreState
    {
        std::uint64_t id = 0;
        mem::Access access;
        Ts baseWts = 0;
        bool hadBlock = false;
    };

    struct MshrEntryState
    {
        Addr lineAddr = 0;
        bool requestSent = false;
        unsigned outstanding = 0;
        bool lockWait = false;
        Ts requestWts = 0;
        std::vector<mem::Access> waiters;
    };

    std::vector<VerifyLineState> lines;   ///< sorted by lineAddr
    std::vector<Ts> warpTs;
    std::uint32_t epoch = 0;
    std::vector<PendingStoreState> pendingStores; ///< sorted by id
    std::vector<std::pair<Addr, std::uint64_t>> storeByLine; ///< sorted
    std::vector<MshrEntryState> mshr;     ///< sorted by lineAddr
    std::vector<mem::Access> replayQueue; ///< in queue order
};

/** Complete protocol-visible state of one GtscL2 partition. */
struct L2VerifyState
{
    std::vector<VerifyLineState> lines; ///< sorted by lineAddr
    Ts memTs = 1;
};

/** Timestamp-domain state. Restore discards the recorded reset
 *  cycles: at a settled snapshot every recorded reset is already in
 *  the past, so epochAt(c) == epoch for every c the restored run can
 *  ask about. */
struct TsDomainVerifyState
{
    std::uint32_t epoch = 0;
};

} // namespace gtsc::core

#endif // GTSC_CORE_GTSC_STATE_HH_
