/**
 * @file
 * 2D mesh interconnect with XY dimension-order routing.
 *
 * SM nodes and L2-partition nodes are placed on one grid; a packet
 * serializes over every link along its X-then-Y path (per-link
 * bandwidth `noc.bytes_per_cycle`, per-hop latency
 * `noc.mesh_hop_latency`). Contention is modeled per link as
 * busy-until serialization (no virtual-channel buffering), which
 * captures the first-order distance and hotspot effects the
 * topology ablation looks at.
 */

#ifndef GTSC_NOC_MESH_HH_
#define GTSC_NOC_MESH_HH_

#include <vector>

#include "noc/arrival_ring.hh"
#include "noc/network.hh"
#include "sim/slot_pool.hh"

namespace gtsc::noc
{

class Mesh final : public Network
{
  public:
    /**
     * @param src_are_sms request direction: sources are SM nodes
     *        (placed first on the grid), destinations partitions.
     *        The response network passes false and the placement
     *        mirrors, so both directions use the same coordinates.
     */
    Mesh(unsigned num_src, unsigned num_dst, bool src_are_sms,
         const sim::Config &cfg, sim::StatSet &stats,
         const std::string &name);

    void setDeliver(DeliverFn fn) override { deliver_ = std::move(fn); }
    void inject(unsigned src, unsigned dst, mem::Packet &&pkt,
                Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextWorkCycle(Cycle now) const override;

    /**
     * Source and destination ports occupy disjoint grid nodes (see
     * srcNode/dstNode placement), so every route crosses >= 1 link:
     * one serialization cycle plus one hop latency minimum.
     */
    Cycle minTraversalLatency() const override { return 1 + hopLatency_; }

    bool quiescent() const override { return inFlight_ == 0; }

    std::uint64_t
    totalBytes() const override
    {
        return *bytesTotal_ + win_.bytes;
    }

    void flushStatWindow() override;

    /** Grid geometry (tests). */
    unsigned gridWidth() const { return width_; }
    unsigned hops(unsigned src, unsigned dst) const;

    void attachTracer(obs::Tracer &tracer) override;
    void attachTranscript(obs::Transcript &transcript,
                          bool response) override;

  private:
    /**
     * Ring/waiting entry: packet-pool slot plus its ordering key.
     * Unlike the crossbar, the sequence number is kept: a packet
     * deferred by a busy ejection port must merge with newly due
     * arrivals in global injection order (the old priority queue's
     * (arrive, seq) order, where deferral rewrote arrive to the next
     * cycle — so same-cycle candidates compete purely on seq).
     */
    struct InFlight
    {
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t dst;
    };

    /** Grid node id of a source/destination port. */
    unsigned srcNode(unsigned src) const;
    unsigned dstNode(unsigned dst) const;

    Cycle txCycles(std::uint32_t bytes) const;

    /**
     * Dense id of the directed link between adjacent grid nodes:
     * four outgoing links per node (E, W, S, N), so the busy-until
     * table is a flat array indexed without hashing on the per-hop
     * routing path.
     */
    unsigned
    linkIndex(unsigned from, unsigned to) const
    {
        unsigned dir;
        if (to == from + 1)
            dir = 0; // east
        else if (to + 1 == from)
            dir = 1; // west
        else if (to == from + width_)
            dir = 2; // south
        else
            dir = 3; // north
        return from * 4 + dir;
    }

    sim::StatSet &stats_;
    std::string name_;
    unsigned numSrc_;
    unsigned numDst_;
    bool srcAreSms_;
    unsigned width_;
    unsigned height_;
    std::uint64_t bytesPerCycle_;
    Cycle hopLatency_;

    /** Busy-until cycle per directed link, indexed by linkIndex(). */
    std::vector<Cycle> linkFree_;
    /** Not-yet-arrived packets, dense ring indexed by the arrival
     *  cycle finalized at inject (route and link serialization are
     *  resolved there). Bucket order is injection order, so a drain
     *  yields candidates already seq-sorted per cycle. */
    ArrivalRing<InFlight> ring_;
    /** Arrived packets deferred by a busy ejection port, seq-sorted.
     *  While non-empty the horizon pins to now+1, exactly like the
     *  old re-queue at arrive = now+1. */
    std::vector<InFlight> waiting_;
    /** Next tick's waiting_ (swap buffers; capacity persists). */
    std::vector<InFlight> nextWaiting_;
    /** Per-tick scratch for newly due arrivals (capacity persists). */
    std::vector<InFlight> dueBuf_;
    /** In-flight packet payloads, indexed by InFlight::slot. */
    sim::SlotPool<mem::Packet> pool_;
    std::vector<Cycle> dstFree_;
    DeliverFn deliver_;
    std::uint64_t seq_ = 0;
    std::uint64_t inFlight_ = 0;

    /**
     * Windowed counter block (same batching as the crossbar's):
     * inject accumulates bytes and per-type tallies here and
     * flushStatWindow() folds them into the StatSet map nodes. The
     * total packet counter stays live — the main loop's progress
     * token reads it every simulated cycle.
     */
    struct StatWindow
    {
        std::uint64_t bytes = 0;
        std::uint64_t bytesByType[mem::kNumMsgTypes] = {};
        std::uint64_t packetsByType[mem::kNumMsgTypes] = {};
    };
    StatWindow win_;

    std::uint64_t *bytesTotal_;
    std::uint64_t *packetsTotal_; ///< live (progress token), not windowed
    /** Per-MsgType byte/packet counters, cached at construction so
     * the inject hot path never rebuilds stat-name strings. */
    std::uint64_t *bytesByType_[mem::kNumMsgTypes];
    std::uint64_t *packetsByType_[mem::kNumMsgTypes];
    sim::Distribution *latency_;
    sim::Distribution *hops_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
    obs::Transcript *transcript_ = nullptr;
    bool transcriptResponse_ = false;
};

} // namespace gtsc::noc

#endif // GTSC_NOC_MESH_HH_
