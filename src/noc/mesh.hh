/**
 * @file
 * 2D mesh interconnect with XY dimension-order routing.
 *
 * SM nodes and L2-partition nodes are placed on one grid; a packet
 * serializes over every link along its X-then-Y path (per-link
 * bandwidth `noc.bytes_per_cycle`, per-hop latency
 * `noc.mesh_hop_latency`). Contention is modeled per link as
 * busy-until serialization (no virtual-channel buffering), which
 * captures the first-order distance and hotspot effects the
 * topology ablation looks at.
 */

#ifndef GTSC_NOC_MESH_HH_
#define GTSC_NOC_MESH_HH_

#include <queue>
#include <vector>

#include "noc/network.hh"

namespace gtsc::noc
{

class Mesh final : public Network
{
  public:
    /**
     * @param src_are_sms request direction: sources are SM nodes
     *        (placed first on the grid), destinations partitions.
     *        The response network passes false and the placement
     *        mirrors, so both directions use the same coordinates.
     */
    Mesh(unsigned num_src, unsigned num_dst, bool src_are_sms,
         const sim::Config &cfg, sim::StatSet &stats,
         const std::string &name);

    void setDeliver(DeliverFn fn) override { deliver_ = std::move(fn); }
    void inject(unsigned src, unsigned dst, mem::Packet &&pkt,
                Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextWorkCycle(Cycle now) const override;

    /**
     * Source and destination ports occupy disjoint grid nodes (see
     * srcNode/dstNode placement), so every route crosses >= 1 link:
     * one serialization cycle plus one hop latency minimum.
     */
    Cycle minTraversalLatency() const override { return 1 + hopLatency_; }

    bool quiescent() const override { return inFlight_ == 0; }
    std::uint64_t totalBytes() const override { return *bytesTotal_; }

    /** Grid geometry (tests). */
    unsigned gridWidth() const { return width_; }
    unsigned hops(unsigned src, unsigned dst) const;

    void attachTracer(obs::Tracer &tracer) override;
    void attachTranscript(obs::Transcript &transcript,
                          bool response) override;

  private:
    struct InFlight
    {
        Cycle arrive;
        std::uint64_t seq;
        unsigned dst;
        mem::Packet pkt;

        bool
        operator>(const InFlight &o) const
        {
            if (arrive != o.arrive)
                return arrive > o.arrive;
            return seq > o.seq;
        }
    };

    /** Grid node id of a source/destination port. */
    unsigned srcNode(unsigned src) const;
    unsigned dstNode(unsigned dst) const;

    Cycle txCycles(std::uint32_t bytes) const;

    /**
     * Dense id of the directed link between adjacent grid nodes:
     * four outgoing links per node (E, W, S, N), so the busy-until
     * table is a flat array indexed without hashing on the per-hop
     * routing path.
     */
    unsigned
    linkIndex(unsigned from, unsigned to) const
    {
        unsigned dir;
        if (to == from + 1)
            dir = 0; // east
        else if (to + 1 == from)
            dir = 1; // west
        else if (to == from + width_)
            dir = 2; // south
        else
            dir = 3; // north
        return from * 4 + dir;
    }

    sim::StatSet &stats_;
    std::string name_;
    unsigned numSrc_;
    unsigned numDst_;
    bool srcAreSms_;
    unsigned width_;
    unsigned height_;
    std::uint64_t bytesPerCycle_;
    Cycle hopLatency_;

    /** Busy-until cycle per directed link, indexed by linkIndex(). */
    std::vector<Cycle> linkFree_;
    std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
        arrivals_;
    std::vector<Cycle> dstFree_;
    DeliverFn deliver_;
    std::uint64_t seq_ = 0;
    std::uint64_t inFlight_ = 0;

    std::uint64_t *bytesTotal_;
    std::uint64_t *packetsTotal_;
    /** Per-MsgType byte/packet counters, cached at construction so
     * the inject hot path never rebuilds stat-name strings. */
    std::uint64_t *bytesByType_[mem::kNumMsgTypes];
    std::uint64_t *packetsByType_[mem::kNumMsgTypes];
    sim::Distribution *latency_;
    sim::Distribution *hops_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
    obs::Transcript *transcript_ = nullptr;
    bool transcriptResponse_ = false;
};

} // namespace gtsc::noc

#endif // GTSC_NOC_MESH_HH_
