#include "noc/mesh.hh"

#include <algorithm>
#include <cmath>

#include "noc/crossbar.hh"
#include "noc/obs_hooks.hh"
#include "sim/log.hh"

namespace gtsc::noc
{

Mesh::Mesh(unsigned num_src, unsigned num_dst, bool src_are_sms,
           const sim::Config &cfg, sim::StatSet &stats,
           const std::string &name)
    : stats_(stats), name_(name), numSrc_(num_src), numDst_(num_dst),
      srcAreSms_(src_are_sms)
{
    bytesPerCycle_ = cfg.getUint("noc.bytes_per_cycle", 32);
    hopLatency_ = cfg.getUint("noc.mesh_hop_latency", 3);
    if (bytesPerCycle_ == 0)
        GTSC_FATAL("noc.bytes_per_cycle must be > 0");

    unsigned total = num_src + num_dst;
    width_ = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(total))));
    if (width_ == 0)
        width_ = 1;
    height_ = (total + width_ - 1) / width_;

    dstFree_.assign(numDst_, 0);
    linkFree_.assign(static_cast<std::size_t>(width_) * height_ * 4, 0);
    bytesTotal_ = &stats_.counter(name_ + ".bytes");
    packetsTotal_ = &stats_.counter(name_ + ".packets");
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        const char *tn = mem::msgTypeName(static_cast<mem::MsgType>(t));
        bytesByType_[t] = &stats_.counter(name_ + ".bytes." + tn);
        packetsByType_[t] = &stats_.counter(name_ + ".packets." + tn);
    }
    latency_ = &stats_.distribution(name_ + ".latency");
    hops_ = &stats_.distribution(name_ + ".hops");
}

unsigned
Mesh::srcNode(unsigned src) const
{
    // SM nodes occupy grid slots [0, numSms); partitions follow.
    // The request network has SM sources; the response network has
    // partition sources — placement is identical either way.
    return srcAreSms_ ? src : numDst_ + src;
}

unsigned
Mesh::dstNode(unsigned dst) const
{
    return srcAreSms_ ? numSrc_ + dst : dst;
}

unsigned
Mesh::hops(unsigned src, unsigned dst) const
{
    unsigned a = srcNode(src);
    unsigned b = dstNode(dst);
    int ax = static_cast<int>(a % width_);
    int ay = static_cast<int>(a / width_);
    int bx = static_cast<int>(b % width_);
    int by = static_cast<int>(b / width_);
    return static_cast<unsigned>(std::abs(ax - bx) +
                                 std::abs(ay - by));
}

Cycle
Mesh::txCycles(std::uint32_t bytes) const
{
    return (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
}

void
Mesh::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track(name_);
}

void
Mesh::attachTranscript(obs::Transcript &transcript, bool response)
{
    transcript_ = &transcript;
    transcriptResponse_ = response;
}

void
Mesh::inject(unsigned src, unsigned dst, mem::Packet &&pkt, Cycle now)
{
    GTSC_ASSERT(src < numSrc_ && dst < numDst_,
                "mesh port out of range src=", src, " dst=", dst);
    GTSC_ASSERT(pkt.sizeBytes > 0, "packet injected with zero size");

    pkt.injectedAt = now;
    *bytesTotal_ += pkt.sizeBytes;
    *packetsTotal_ += 1;
    *bytesByType_[static_cast<unsigned>(pkt.type)] += pkt.sizeBytes;
    *packetsByType_[static_cast<unsigned>(pkt.type)] += 1;

    // XY route: walk X first, then Y, serializing on each link.
    unsigned node = srcNode(src);
    unsigned target = dstNode(dst);
    Cycle tx = txCycles(pkt.sizeBytes);
    Cycle t = now;
    unsigned hop_count = 0;

    auto traverse = [&](unsigned next) {
        Cycle depart = t;
        Cycle &link_free = linkFree_[linkIndex(node, next)];
        if (link_free > depart)
            depart = link_free;
        link_free = depart + tx;
        t = depart + tx + hopLatency_;
        node = next;
        ++hop_count;
    };

    int x = static_cast<int>(node % width_);
    int y = static_cast<int>(node / width_);
    int txx = static_cast<int>(target % width_);
    int tyy = static_cast<int>(target / width_);
    while (x != txx) {
        x += (txx > x) ? 1 : -1;
        traverse(static_cast<unsigned>(y * static_cast<int>(width_) + x));
    }
    while (y != tyy) {
        y += (tyy > y) ? 1 : -1;
        traverse(static_cast<unsigned>(y * static_cast<int>(width_) + x));
    }

    hops_->sample(static_cast<double>(hop_count));
    if (trace_) {
        recordNocEvent(*trace_, track_, obs::EventKind::NocInject, pkt,
                       src, dst, now, pkt.sizeBytes);
    }
    ++inFlight_;
    arrivals_.push(InFlight{t, seq_++, dst, std::move(pkt)});
    wake(arrivals_.top().arrive);
}

Cycle
Mesh::nextWorkCycle(Cycle now) const
{
    // Arrival times are final at inject; a packet that finds its
    // ejection port busy is re-queued for the next cycle by tick(),
    // which keeps this horizon exact during port back-pressure.
    if (arrivals_.empty())
        return kCycleNever;
    return std::max(arrivals_.top().arrive, now + 1);
}

void
Mesh::tick(Cycle now)
{
    // Deliver every arrived packet whose ejection port is free; a
    // busy port only defers its own packets (re-queued for the next
    // cycle), not other destinations'.
    std::vector<InFlight> deferred;
    while (!arrivals_.empty() && arrivals_.top().arrive <= now) {
        InFlight item = std::move(const_cast<InFlight &>(arrivals_.top()));
        arrivals_.pop();
        if (dstFree_[item.dst] > now) {
            item.arrive = now + 1;
            deferred.push_back(std::move(item));
            continue;
        }
        --inFlight_;
        dstFree_[item.dst] = now + txCycles(item.pkt.sizeBytes);
        latency_->sample(
            static_cast<double>(now - item.pkt.injectedAt));
        if (trace_) {
            recordNocEvent(*trace_, track_, obs::EventKind::NocDeliver,
                           item.pkt, item.pkt.src, item.dst, now,
                           now - item.pkt.injectedAt);
        }
        if (transcript_) {
            logTranscript(*transcript_, item.pkt, item.dst,
                          transcriptResponse_, now);
        }
        deliver_(item.dst, std::move(item.pkt));
    }
    for (auto &item : deferred)
        arrivals_.push(std::move(item));
}

std::unique_ptr<Network>
makeNetwork(unsigned num_src, unsigned num_dst, bool src_are_sms,
            const sim::Config &cfg, sim::StatSet &stats,
            const std::string &name)
{
    std::string topo = cfg.getString("noc.topology", "xbar");
    if (topo == "xbar" || topo == "crossbar")
        return std::make_unique<Crossbar>(num_src, num_dst, cfg, stats,
                                          name);
    if (topo == "mesh")
        return std::make_unique<Mesh>(num_src, num_dst, src_are_sms,
                                      cfg, stats, name);
    GTSC_FATAL("unknown noc.topology '", topo, "' (want xbar|mesh)");
}

} // namespace gtsc::noc
