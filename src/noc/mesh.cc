#include "noc/mesh.hh"

#include <algorithm>
#include <cmath>

#include "noc/crossbar.hh"
#include "noc/obs_hooks.hh"
#include "sim/log.hh"

namespace gtsc::noc
{

Mesh::Mesh(unsigned num_src, unsigned num_dst, bool src_are_sms,
           const sim::Config &cfg, sim::StatSet &stats,
           const std::string &name)
    : stats_(stats), name_(name), numSrc_(num_src), numDst_(num_dst),
      srcAreSms_(src_are_sms)
{
    bytesPerCycle_ = cfg.getUint("noc.bytes_per_cycle", 32);
    hopLatency_ = cfg.getUint("noc.mesh_hop_latency", 3);
    if (bytesPerCycle_ == 0)
        GTSC_FATAL("noc.bytes_per_cycle must be > 0");

    unsigned total = num_src + num_dst;
    width_ = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(total))));
    if (width_ == 0)
        width_ = 1;
    height_ = (total + width_ - 1) / width_;

    dstFree_.assign(numDst_, 0);
    linkFree_.assign(static_cast<std::size_t>(width_) * height_ * 4, 0);
    // Unlike the crossbar there is no per-source one-arrival-per-
    // cycle bound (routes of different lengths can land together),
    // so the reservation is a heuristic; buckets grow if exceeded.
    ring_.init(kArrivalRingSpan, numSrc_);
    waiting_.reserve(16);
    nextWaiting_.reserve(16);
    dueBuf_.reserve(16);
    bytesTotal_ = &stats_.counter(name_ + ".bytes");
    packetsTotal_ = &stats_.counter(name_ + ".packets");
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        const char *tn = mem::msgTypeName(static_cast<mem::MsgType>(t));
        bytesByType_[t] = &stats_.counter(name_ + ".bytes." + tn);
        packetsByType_[t] = &stats_.counter(name_ + ".packets." + tn);
    }
    latency_ = &stats_.distribution(name_ + ".latency");
    hops_ = &stats_.distribution(name_ + ".hops");
}

unsigned
Mesh::srcNode(unsigned src) const
{
    // SM nodes occupy grid slots [0, numSms); partitions follow.
    // The request network has SM sources; the response network has
    // partition sources — placement is identical either way.
    return srcAreSms_ ? src : numDst_ + src;
}

unsigned
Mesh::dstNode(unsigned dst) const
{
    return srcAreSms_ ? numSrc_ + dst : dst;
}

unsigned
Mesh::hops(unsigned src, unsigned dst) const
{
    unsigned a = srcNode(src);
    unsigned b = dstNode(dst);
    int ax = static_cast<int>(a % width_);
    int ay = static_cast<int>(a / width_);
    int bx = static_cast<int>(b % width_);
    int by = static_cast<int>(b / width_);
    return static_cast<unsigned>(std::abs(ax - bx) +
                                 std::abs(ay - by));
}

Cycle
Mesh::txCycles(std::uint32_t bytes) const
{
    return (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
}

void
Mesh::flushStatWindow()
{
    *bytesTotal_ += win_.bytes;
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        *bytesByType_[t] += win_.bytesByType[t];
        *packetsByType_[t] += win_.packetsByType[t];
    }
    win_ = StatWindow{};
}

void
Mesh::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track(name_);
}

void
Mesh::attachTranscript(obs::Transcript &transcript, bool response)
{
    transcript_ = &transcript;
    transcriptResponse_ = response;
}

void
Mesh::inject(unsigned src, unsigned dst, mem::Packet &&pkt, Cycle now)
{
    GTSC_ASSERT(src < numSrc_ && dst < numDst_,
                "mesh port out of range src=", src, " dst=", dst);
    GTSC_ASSERT(pkt.sizeBytes > 0, "packet injected with zero size");

    pkt.injectedAt = now;
    win_.bytes += pkt.sizeBytes;
    *packetsTotal_ += 1; // live: the progress token reads it per cycle
    win_.bytesByType[static_cast<unsigned>(pkt.type)] += pkt.sizeBytes;
    win_.packetsByType[static_cast<unsigned>(pkt.type)] += 1;

    // XY route: walk X first, then Y, serializing on each link.
    unsigned node = srcNode(src);
    unsigned target = dstNode(dst);
    Cycle tx = txCycles(pkt.sizeBytes);
    Cycle t = now;
    unsigned hop_count = 0;

    auto traverse = [&](unsigned next) {
        Cycle depart = t;
        Cycle &link_free = linkFree_[linkIndex(node, next)];
        if (link_free > depart)
            depart = link_free;
        link_free = depart + tx;
        t = depart + tx + hopLatency_;
        node = next;
        ++hop_count;
    };

    int x = static_cast<int>(node % width_);
    int y = static_cast<int>(node / width_);
    int txx = static_cast<int>(target % width_);
    int tyy = static_cast<int>(target / width_);
    while (x != txx) {
        x += (txx > x) ? 1 : -1;
        traverse(static_cast<unsigned>(y * static_cast<int>(width_) + x));
    }
    while (y != tyy) {
        y += (tyy > y) ? 1 : -1;
        traverse(static_cast<unsigned>(y * static_cast<int>(width_) + x));
    }

    hops_->sample(static_cast<double>(hop_count));
    if (trace_) {
        recordNocEvent(*trace_, track_, obs::EventKind::NocInject, pkt,
                       src, dst, now, pkt.sizeBytes);
    }
    ++inFlight_;
    std::uint32_t slot = pool_.acquire();
    pool_[slot] = std::move(pkt);
    ring_.push(now, t, InFlight{seq_++, slot, dst});
    wake(waiting_.empty() ? ring_.nextArrival() : now + 1);
}

Cycle
Mesh::nextWorkCycle(Cycle now) const
{
    // Arrival times are final at inject; a packet that finds its
    // ejection port busy waits in waiting_ and retries every cycle,
    // which keeps this horizon exact during port back-pressure.
    if (inFlight_ == 0)
        return kCycleNever;
    if (!waiting_.empty())
        return now + 1;
    return std::max(ring_.nextArrival(), now + 1);
}

void
Mesh::tick(Cycle now)
{
    // Deliver every arrived packet whose ejection port is free; a
    // busy port only defers its own packets (retried next cycle),
    // not other destinations'.
    if (inFlight_ == 0)
        return;
    if (waiting_.empty() && ring_.nextArrival() > now)
        return;

    // Newly due arrivals, in (arrive, seq) order. While anything
    // waits the horizon pins to now+1, so drains are never late and
    // this buffer is seq-sorted whenever waiting_ is non-empty (all
    // due entries share one arrival cycle).
    dueBuf_.clear();
    ring_.drainDue(now, [&](Cycle, const InFlight &e) {
        dueBuf_.push_back(e);
    });

    // Merge deferred and newly due candidates in global injection
    // order — same-cycle candidates compete purely on seq, exactly
    // like the old priority queue after its arrive-rewriting
    // deferral.
    nextWaiting_.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < waiting_.size() || j < dueBuf_.size()) {
        bool take_waiting =
            j >= dueBuf_.size() ||
            (i < waiting_.size() && waiting_[i].seq < dueBuf_[j].seq);
        InFlight item = take_waiting ? waiting_[i++] : dueBuf_[j++];
        if (dstFree_[item.dst] > now) {
            // Keep nextWaiting_ seq-sorted. Candidates already come
            // in seq order on every reachable path (see above), so
            // the insertion scan terminates immediately; it exists
            // for the defensive multi-cycle-drain case only.
            std::size_t pos = nextWaiting_.size();
            nextWaiting_.push_back(item);
            while (pos > 0 &&
                   nextWaiting_[pos - 1].seq > nextWaiting_[pos].seq) {
                std::swap(nextWaiting_[pos - 1], nextWaiting_[pos]);
                --pos;
            }
            continue;
        }
        --inFlight_;
        mem::Packet pkt = std::move(pool_[item.slot]);
        pool_.release(item.slot);
        dstFree_[item.dst] = now + txCycles(pkt.sizeBytes);
        latency_->sample(static_cast<double>(now - pkt.injectedAt));
        if (trace_) {
            recordNocEvent(*trace_, track_, obs::EventKind::NocDeliver,
                           pkt, pkt.src, item.dst, now,
                           now - pkt.injectedAt);
        }
        if (transcript_) {
            logTranscript(*transcript_, pkt, item.dst,
                          transcriptResponse_, now);
        }
        deliver_(item.dst, std::move(pkt));
    }
    waiting_.swap(nextWaiting_);
}

std::unique_ptr<Network>
makeNetwork(unsigned num_src, unsigned num_dst, bool src_are_sms,
            const sim::Config &cfg, sim::StatSet &stats,
            const std::string &name)
{
    std::string topo = cfg.getString("noc.topology", "xbar");
    if (topo == "xbar" || topo == "crossbar")
        return std::make_unique<Crossbar>(num_src, num_dst, cfg, stats,
                                          name);
    if (topo == "mesh")
        return std::make_unique<Mesh>(num_src, num_dst, src_are_sms,
                                      cfg, stats, name);
    GTSC_FATAL("unknown noc.topology '", topo, "' (want xbar|mesh)");
}

} // namespace gtsc::noc
