/**
 * @file
 * Shared observability helpers for the network implementations
 * (crossbar and mesh record the same inject/deliver events and
 * transcript entries).
 */

#ifndef GTSC_NOC_OBS_HOOKS_HH_
#define GTSC_NOC_OBS_HOOKS_HH_

#include "mem/packet.hh"
#include "obs/events.hh"
#include "obs/tracer.hh"
#include "obs/transcript.hh"
#include "sim/types.hh"

namespace gtsc::noc
{

inline void
recordNocEvent(obs::Tracer &tracer, obs::Tracer::TrackId track,
               obs::EventKind kind, const mem::Packet &pkt,
               unsigned src, unsigned dst, Cycle now,
               std::uint64_t v1)
{
    tracer.record(track,
                  obs::Event{now, pkt.lineAddr,
                             static_cast<std::uint64_t>(pkt.type), v1,
                             kind, static_cast<std::uint16_t>(src),
                             static_cast<std::uint16_t>(dst)});
}

inline void
logTranscript(obs::Transcript &ts, const mem::Packet &pkt, unsigned dst,
              bool response, Cycle now)
{
    if (!ts.wants(pkt.lineAddr))
        return;
    obs::TranscriptEntry e;
    e.cycle = now;
    e.line = pkt.lineAddr;
    e.msg = mem::msgTypeName(pkt.type);
    e.src = response ? pkt.part : pkt.src;
    e.dst = static_cast<std::uint16_t>(dst);
    e.warp = pkt.warp;
    e.response = response;
    e.ts0 = pkt.wts ? pkt.wts : pkt.gwct;
    e.ts1 = pkt.rts ? pkt.rts : pkt.leaseEnd;
    ts.log(e);
}

} // namespace gtsc::noc

#endif // GTSC_NOC_OBS_HOOKS_HH_
