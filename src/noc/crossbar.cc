#include "noc/crossbar.hh"

#include <algorithm>

#include "noc/obs_hooks.hh"
#include "sim/log.hh"

namespace gtsc::noc
{

Crossbar::Crossbar(unsigned num_src, unsigned num_dst,
                   const sim::Config &cfg, sim::StatSet &stats,
                   const std::string &name)
    : stats_(stats), name_(name), numSrc_(num_src), numDst_(num_dst)
{
    bytesPerCycle_ = cfg.getUint("noc.bytes_per_cycle", 32);
    hopLatency_ = cfg.getUint("noc.hop_latency", 12);
    if (bytesPerCycle_ == 0)
        GTSC_FATAL("noc.bytes_per_cycle must be > 0");
    srcFree_.assign(numSrc_, 0);
    dstFree_.assign(numDst_, 0);
    // One packet per source per cycle can arrive (injection links
    // serialize), so span buckets reserved to the source count never
    // grow — zero-alloc steady state by construction.
    ring_.init(kArrivalRingSpan, numSrc_);
    portFifo_.resize(numDst_);
    pending_.resize(numDst_);
    bytesTotal_ = &stats_.counter(name_ + ".bytes");
    packetsTotal_ = &stats_.counter(name_ + ".packets");
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        const char *tn = mem::msgTypeName(static_cast<mem::MsgType>(t));
        bytesByType_[t] = &stats_.counter(name_ + ".bytes." + tn);
        packetsByType_[t] = &stats_.counter(name_ + ".packets." + tn);
    }
    latency_ = &stats_.distribution(name_ + ".latency");
}

Cycle
Crossbar::txCycles(std::uint32_t bytes) const
{
    return (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
}

void
Crossbar::flushStatWindow()
{
    *bytesTotal_ += win_.bytes;
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        *bytesByType_[t] += win_.bytesByType[t];
        *packetsByType_[t] += win_.packetsByType[t];
    }
    win_ = StatWindow{};
}

void
Crossbar::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track(name_);
}

void
Crossbar::attachTranscript(obs::Transcript &transcript, bool response)
{
    transcript_ = &transcript;
    transcriptResponse_ = response;
}

void
Crossbar::inject(unsigned src, unsigned dst, mem::Packet &&pkt, Cycle now)
{
    GTSC_ASSERT(src < numSrc_ && dst < numDst_,
                "crossbar port out of range src=", src, " dst=", dst);
    GTSC_ASSERT(pkt.sizeBytes > 0, "packet injected with zero size: ",
                pkt.toString());

    pkt.injectedAt = now;
    win_.bytes += pkt.sizeBytes;
    *packetsTotal_ += 1; // live: the progress token reads it per cycle
    win_.bytesByType[static_cast<unsigned>(pkt.type)] += pkt.sizeBytes;
    win_.packetsByType[static_cast<unsigned>(pkt.type)] += 1;

    if (trace_) {
        recordNocEvent(*trace_, track_, obs::EventKind::NocInject, pkt,
                       src, dst, now, pkt.sizeBytes);
    }

    // Serialize on the injection link, then cross the fabric.
    Cycle tx = txCycles(pkt.sizeBytes);
    Cycle start = std::max(now, srcFree_[src]);
    srcFree_[src] = start + tx;
    Cycle arrive = start + tx + hopLatency_;

    ++inFlight_;
    std::uint32_t slot = pool_.acquire();
    pool_[slot] = std::move(pkt);
    ring_.push(now, arrive, InFlight{slot, dst});
    // Conservative bound: the fabric arrival ignores the ejection
    // link's serialization window, so it is never later than the
    // true ejection; the sweep at that cycle re-tightens it exactly
    // (an early sweep only moves due entries to their port FIFO —
    // no observable side effects).
    if (arrive < earliestEject_)
        earliestEject_ = arrive;
    wake(earliestEject_);
}

void
Crossbar::tickSweep(Cycle now)
{
    // Phase 1: pop exactly the due packets off the arrival ring into
    // their port FIFOs, in (arrive, inject) order — so each FIFO is
    // in delivery order by construction.
    ring_.drainDue(now, [&](Cycle, const InFlight &e) {
        portFifo_[e.dst].push_back(e.slot);
        pending_.set(e.dst);
    });

    // Phase 2: eject at most one packet per pending port (the
    // ejection link serializes for txCycles >= 1), ascending port
    // order like the old per-port sweep.
    pending_.forEachSet([&](unsigned dst) {
        if (dstFree_[dst] > now)
            return;
        auto &fifo = portFifo_[dst];
        std::uint32_t slot = fifo.front();
        fifo.pop_front();
        if (fifo.empty())
            pending_.clear(dst);
        mem::Packet pkt = std::move(pool_[slot]);
        pool_.release(slot);
        --inFlight_;
        dstFree_[dst] = now + txCycles(pkt.sizeBytes);
        latency_->sample(static_cast<double>(now - pkt.injectedAt));
        if (trace_) {
            recordNocEvent(*trace_, track_, obs::EventKind::NocDeliver,
                           pkt, pkt.src, dst, now, now - pkt.injectedAt);
        }
        if (transcript_) {
            logTranscript(*transcript_, pkt, dst, transcriptResponse_,
                          now);
        }
        deliver_(dst, std::move(pkt));
    });

    // Re-tighten the global bound after both phases: deliveries can
    // re-enter inject() on this crossbar (new ring arrivals), and a
    // port that just ejected is busy until its link frees. Waiting
    // FIFO heads have already arrived, so their port's bound is its
    // link-free cycle exactly.
    Cycle earliest = ring_.nextArrival();
    pending_.forEachSet([&](unsigned dst) {
        earliest = std::min(earliest, std::max(dstFree_[dst], now + 1));
    });
    earliestEject_ = earliest;
}

} // namespace gtsc::noc
