#include "noc/crossbar.hh"

#include <algorithm>

#include "noc/obs_hooks.hh"
#include "sim/log.hh"

namespace gtsc::noc
{

Crossbar::Crossbar(unsigned num_src, unsigned num_dst,
                   const sim::Config &cfg, sim::StatSet &stats,
                   const std::string &name)
    : stats_(stats), name_(name), numSrc_(num_src), numDst_(num_dst)
{
    bytesPerCycle_ = cfg.getUint("noc.bytes_per_cycle", 32);
    hopLatency_ = cfg.getUint("noc.hop_latency", 12);
    if (bytesPerCycle_ == 0)
        GTSC_FATAL("noc.bytes_per_cycle must be > 0");
    srcFree_.assign(numSrc_, 0);
    dstFree_.assign(numDst_, 0);
    portBound_.assign(numDst_, kCycleNever);
    dstQueue_.resize(numDst_);
    bytesTotal_ = &stats_.counter(name_ + ".bytes");
    packetsTotal_ = &stats_.counter(name_ + ".packets");
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        const char *tn = mem::msgTypeName(static_cast<mem::MsgType>(t));
        bytesByType_[t] = &stats_.counter(name_ + ".bytes." + tn);
        packetsByType_[t] = &stats_.counter(name_ + ".packets." + tn);
    }
    latency_ = &stats_.distribution(name_ + ".latency");
}

Cycle
Crossbar::txCycles(std::uint32_t bytes) const
{
    return (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
}

void
Crossbar::flushStatWindow()
{
    *bytesTotal_ += win_.bytes;
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        *bytesByType_[t] += win_.bytesByType[t];
        *packetsByType_[t] += win_.packetsByType[t];
    }
    win_ = StatWindow{};
}

void
Crossbar::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track(name_);
}

void
Crossbar::attachTranscript(obs::Transcript &transcript, bool response)
{
    transcript_ = &transcript;
    transcriptResponse_ = response;
}

void
Crossbar::inject(unsigned src, unsigned dst, mem::Packet &&pkt, Cycle now)
{
    GTSC_ASSERT(src < numSrc_ && dst < numDst_,
                "crossbar port out of range src=", src, " dst=", dst);
    GTSC_ASSERT(pkt.sizeBytes > 0, "packet injected with zero size: ",
                pkt.toString());

    pkt.injectedAt = now;
    win_.bytes += pkt.sizeBytes;
    *packetsTotal_ += 1; // live: the progress token reads it per cycle
    win_.bytesByType[static_cast<unsigned>(pkt.type)] += pkt.sizeBytes;
    win_.packetsByType[static_cast<unsigned>(pkt.type)] += 1;

    if (trace_) {
        recordNocEvent(*trace_, track_, obs::EventKind::NocInject, pkt,
                       src, dst, now, pkt.sizeBytes);
    }

    // Serialize on the injection link, then cross the fabric.
    Cycle tx = txCycles(pkt.sizeBytes);
    Cycle start = std::max(now, srcFree_[src]);
    srcFree_[src] = start + tx;
    Cycle arrive = start + tx + hopLatency_;

    ++inFlight_;
    std::uint32_t slot = pool_.acquire();
    pool_[slot] = std::move(pkt);
    auto &q = dstQueue_[dst];
    q.push(InFlight{arrive, seq_++, slot});
    // The new packet can only move the port's head earlier, so the
    // recomputed head bound never loosens.
    Cycle bound = std::max(q.top().arrive, dstFree_[dst]);
    portBound_[dst] = bound;
    if (bound < earliestEject_)
        earliestEject_ = bound;
    wake(earliestEject_);
}

void
Crossbar::tickSweep(Cycle now)
{
    for (unsigned dst = 0; dst < numDst_; ++dst) {
        if (portBound_[dst] > now)
            continue;
        auto &q = dstQueue_[dst];
        // Ejection link: one packet every txCycles per port.
        while (!q.empty() && q.top().arrive <= now &&
               dstFree_[dst] <= now) {
            std::uint32_t slot = q.top().slot;
            mem::Packet pkt = std::move(pool_[slot]);
            pool_.release(slot);
            q.pop();
            --inFlight_;
            dstFree_[dst] = now + txCycles(pkt.sizeBytes);
            latency_->sample(static_cast<double>(now - pkt.injectedAt));
            if (trace_) {
                recordNocEvent(*trace_, track_,
                               obs::EventKind::NocDeliver, pkt,
                               pkt.src, dst, now,
                               now - pkt.injectedAt);
            }
            if (transcript_) {
                logTranscript(*transcript_, pkt, dst,
                              transcriptResponse_, now);
            }
            deliver_(dst, std::move(pkt));
        }
        portBound_[dst] =
            q.empty() ? kCycleNever
                      : std::max(q.top().arrive, dstFree_[dst]);
    }
    // Re-tighten the global bound in a second pass: deliveries can
    // re-enter inject() on this crossbar (which refreshes its port's
    // bound), so the flat bound array is only final once the sweep
    // above is done.
    Cycle earliest = kCycleNever;
    for (Cycle b : portBound_)
        earliest = std::min(earliest, b);
    earliestEject_ = earliest;
}

} // namespace gtsc::noc
