#include "noc/crossbar.hh"

#include <algorithm>

#include "noc/obs_hooks.hh"
#include "sim/log.hh"

namespace gtsc::noc
{

Crossbar::Crossbar(unsigned num_src, unsigned num_dst,
                   const sim::Config &cfg, sim::StatSet &stats,
                   const std::string &name)
    : stats_(stats), name_(name), numSrc_(num_src), numDst_(num_dst)
{
    bytesPerCycle_ = cfg.getUint("noc.bytes_per_cycle", 32);
    hopLatency_ = cfg.getUint("noc.hop_latency", 12);
    if (bytesPerCycle_ == 0)
        GTSC_FATAL("noc.bytes_per_cycle must be > 0");
    srcFree_.assign(numSrc_, 0);
    dstFree_.assign(numDst_, 0);
    dstQueue_.resize(numDst_);
    bytesTotal_ = &stats_.counter(name_ + ".bytes");
    packetsTotal_ = &stats_.counter(name_ + ".packets");
    for (unsigned t = 0; t < mem::kNumMsgTypes; ++t) {
        const char *tn = mem::msgTypeName(static_cast<mem::MsgType>(t));
        bytesByType_[t] = &stats_.counter(name_ + ".bytes." + tn);
        packetsByType_[t] = &stats_.counter(name_ + ".packets." + tn);
    }
    latency_ = &stats_.distribution(name_ + ".latency");
}

Cycle
Crossbar::txCycles(std::uint32_t bytes) const
{
    return (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
}

void
Crossbar::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track(name_);
}

void
Crossbar::attachTranscript(obs::Transcript &transcript, bool response)
{
    transcript_ = &transcript;
    transcriptResponse_ = response;
}

void
Crossbar::inject(unsigned src, unsigned dst, mem::Packet &&pkt, Cycle now)
{
    GTSC_ASSERT(src < numSrc_ && dst < numDst_,
                "crossbar port out of range src=", src, " dst=", dst);
    GTSC_ASSERT(pkt.sizeBytes > 0, "packet injected with zero size: ",
                pkt.toString());

    pkt.injectedAt = now;
    *bytesTotal_ += pkt.sizeBytes;
    *packetsTotal_ += 1;
    *bytesByType_[static_cast<unsigned>(pkt.type)] += pkt.sizeBytes;
    *packetsByType_[static_cast<unsigned>(pkt.type)] += 1;

    if (trace_) {
        recordNocEvent(*trace_, track_, obs::EventKind::NocInject, pkt,
                       src, dst, now, pkt.sizeBytes);
    }

    // Serialize on the injection link, then cross the fabric.
    Cycle tx = txCycles(pkt.sizeBytes);
    Cycle start = std::max(now, srcFree_[src]);
    srcFree_[src] = start + tx;
    Cycle arrive = start + tx + hopLatency_;

    ++inFlight_;
    dstQueue_[dst].push(InFlight{arrive, seq_++, std::move(pkt)});
}

Cycle
Crossbar::nextWorkCycle(Cycle now) const
{
    // A queued packet ejects at the first cycle that is past both
    // its fabric arrival and its port's serialization window; tick()
    // is a no-op before the earliest such cycle.
    Cycle next = kCycleNever;
    for (unsigned dst = 0; dst < numDst_; ++dst) {
        const auto &q = dstQueue_[dst];
        if (q.empty())
            continue;
        Cycle c = std::max(q.top().arrive, dstFree_[dst]);
        next = std::min(next, std::max(c, now + 1));
    }
    return next;
}

void
Crossbar::tick(Cycle now)
{
    for (unsigned dst = 0; dst < numDst_; ++dst) {
        auto &q = dstQueue_[dst];
        // Ejection link: one packet every txCycles per port.
        while (!q.empty() && q.top().arrive <= now &&
               dstFree_[dst] <= now) {
            mem::Packet pkt = std::move(const_cast<InFlight &>(q.top()).pkt);
            q.pop();
            --inFlight_;
            dstFree_[dst] = now + txCycles(pkt.sizeBytes);
            latency_->sample(static_cast<double>(now - pkt.injectedAt));
            if (trace_) {
                recordNocEvent(*trace_, track_,
                               obs::EventKind::NocDeliver, pkt,
                               pkt.src, dst, now,
                               now - pkt.injectedAt);
            }
            if (transcript_) {
                logTranscript(*transcript_, pkt, dst,
                              transcriptResponse_, now);
            }
            deliver_(dst, std::move(pkt));
        }
    }
}

} // namespace gtsc::noc
