/**
 * @file
 * Abstract interconnect interface. Two implementations ship: the
 * default Crossbar (GPGPU-Sim-style, what the paper models) and a
 * 2D Mesh with XY routing (topology ablation). Select with
 * `noc.topology = xbar | mesh`.
 */

#ifndef GTSC_NOC_NETWORK_HH_
#define GTSC_NOC_NETWORK_HH_

#include <memory>
#include <string>

#include "mem/packet.hh"
#include "sim/config.hh"
#include "sim/small_function.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::obs
{
class Tracer;
class Transcript;
}

namespace gtsc::noc
{

class Network
{
  public:
    using DeliverFn =
        sim::SmallFunction<void(unsigned dst, mem::Packet &&)>;
    /** Re-arm this parked network (wake contract,
     *  mem/controllers.hh). Implementations call it from inject()
     *  with their post-inject nextWorkCycle(), the only point a
     *  quiescent network acquires tick() work. */
    using WakeFn = sim::SmallFunction<void(Cycle)>;

    virtual ~Network() = default;

    virtual void setDeliver(DeliverFn fn) = 0;

    void setWakeHook(WakeFn fn) { wake_ = std::move(fn); }

    /** Inject a packet at source port `src` bound for `dst`. */
    virtual void inject(unsigned src, unsigned dst, mem::Packet &&pkt,
                        Cycle now) = 0;

    /** Advance: eject packets whose delivery time has been reached. */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle at which tick() could eject a packet
     * (kCycleNever when nothing is in flight); must honour the
     * horizon contract in mem/controllers.hh. The default never
     * skips.
     */
    virtual Cycle nextWorkCycle(Cycle now) const { return now + 1; }

    virtual bool quiescent() const = 0;
    virtual std::uint64_t totalBytes() const = 0;

    /**
     * Batch locally windowed counters into the StatSet (no-op for
     * networks that count straight into it). Anything reading the
     * network's stats by name mid-run must be preceded by a flush;
     * GpuSystem owns those call sites.
     */
    virtual void flushStatWindow() {}

    /**
     * A hard lower bound on inject-to-deliver latency: a packet
     * injected at cycle c is never delivered before
     * c + minTraversalLatency(). This is the conservative-PDES
     * lookahead the sharded main loop uses as its window size — SMs
     * simulated in parallel for W = minTraversalLatency() cycles
     * cannot observe each other's traffic early, because nothing
     * injected inside the window can eject inside it. Must be >= 1.
     */
    virtual Cycle minTraversalLatency() const { return 1; }

    /** Opt into inject/deliver event tracing (no-op by default). */
    virtual void attachTracer(obs::Tracer &tracer) { (void)tracer; }

    /**
     * Log every delivered coherence message into a protocol
     * transcript. Delivery is the one point all protocol traffic
     * funnels through, so the per-line history is complete and its
     * order is identical with fast-forward on or off. `response`
     * tells the network whether pkt.src (false) or pkt.part (true)
     * names the sender.
     */
    virtual void
    attachTranscript(obs::Transcript &transcript, bool response)
    {
        (void)transcript;
        (void)response;
    }

  protected:
    /** Notify the scheduler this network has tick() work at `when`. */
    void
    wake(Cycle when)
    {
        if (wake_)
            wake_(when);
    }

    WakeFn wake_;
};

/**
 * Build a network from `noc.topology`.
 *
 * @param num_src injection ports, @param num_dst ejection ports.
 * @param src_are_sms true for the request network (SMs inject,
 *        partitions eject); used by the mesh to place nodes so both
 *        directions agree on coordinates.
 */
std::unique_ptr<Network> makeNetwork(unsigned num_src, unsigned num_dst,
                                     bool src_are_sms,
                                     const sim::Config &cfg,
                                     sim::StatSet &stats,
                                     const std::string &name);

} // namespace gtsc::noc

#endif // GTSC_NOC_NETWORK_HH_
