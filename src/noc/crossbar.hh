/**
 * @file
 * Interconnection network between SMs and L2 partitions.
 *
 * Two independent Crossbar instances form the request and response
 * networks (the GPGPU-Sim layout). The model captures the two
 * effects the paper's results depend on: finite per-port bandwidth
 * (packets serialize at their injection and ejection links, so
 * latency grows with load) and per-message wire size (so protocol
 * payload differences show up as traffic and congestion).
 */

#ifndef GTSC_NOC_CROSSBAR_HH_
#define GTSC_NOC_CROSSBAR_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "mem/packet.hh"
#include "noc/network.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::noc
{

class Crossbar : public Network
{
  public:
    Crossbar(unsigned num_src, unsigned num_dst, const sim::Config &cfg,
             sim::StatSet &stats, const std::string &name);

    void setDeliver(DeliverFn fn) override { deliver_ = std::move(fn); }

    /**
     * Inject a packet at source port `src` bound for `dst`.
     * pkt.sizeBytes must be set; pkt.injectedAt is stamped here.
     */
    void inject(unsigned src, unsigned dst, mem::Packet &&pkt,
                Cycle now) override;

    /** Eject packets whose arrival time has been reached. */
    void tick(Cycle now) override;

    Cycle nextWorkCycle(Cycle now) const override;

    /**
     * Injection serializes for at least one cycle (txCycles >= 1 for
     * any non-empty packet) before the fabric's fixed hop latency,
     * so arrive = start + tx + hop >= now + 1 + hopLatency.
     */
    Cycle minTraversalLatency() const override { return 1 + hopLatency_; }

    bool quiescent() const override { return inFlight_ == 0; }

    std::uint64_t totalBytes() const override { return *bytesTotal_; }

    void attachTracer(obs::Tracer &tracer) override;
    void attachTranscript(obs::Transcript &transcript,
                          bool response) override;

  private:
    struct InFlight
    {
        Cycle arrive;
        std::uint64_t seq;
        mem::Packet pkt;

        bool
        operator>(const InFlight &o) const
        {
            if (arrive != o.arrive)
                return arrive > o.arrive;
            return seq > o.seq;
        }
    };

    Cycle txCycles(std::uint32_t bytes) const;

    sim::StatSet &stats_;
    std::string name_;
    unsigned numSrc_;
    unsigned numDst_;
    std::uint64_t bytesPerCycle_;
    Cycle hopLatency_;

    std::vector<Cycle> srcFree_;
    std::vector<Cycle> dstFree_;
    std::vector<std::priority_queue<InFlight, std::vector<InFlight>,
                                    std::greater<>>>
        dstQueue_;
    DeliverFn deliver_;
    std::uint64_t seq_ = 0;
    std::uint64_t inFlight_ = 0;

    std::uint64_t *bytesTotal_;
    std::uint64_t *packetsTotal_;
    /** Per-MsgType byte/packet counters, cached at construction so
     * the inject hot path never rebuilds stat-name strings. */
    std::uint64_t *bytesByType_[mem::kNumMsgTypes];
    std::uint64_t *packetsByType_[mem::kNumMsgTypes];
    sim::Distribution *latency_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
    obs::Transcript *transcript_ = nullptr;
    bool transcriptResponse_ = false;
};

} // namespace gtsc::noc

#endif // GTSC_NOC_CROSSBAR_HH_
