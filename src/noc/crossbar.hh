/**
 * @file
 * Interconnection network between SMs and L2 partitions.
 *
 * Two independent Crossbar instances form the request and response
 * networks (the GPGPU-Sim layout). The model captures the two
 * effects the paper's results depend on: finite per-port bandwidth
 * (packets serialize at their injection and ejection links, so
 * latency grows with load) and per-message wire size (so protocol
 * payload differences show up as traffic and congestion).
 */

#ifndef GTSC_NOC_CROSSBAR_HH_
#define GTSC_NOC_CROSSBAR_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/packet.hh"
#include "noc/arrival_ring.hh"
#include "noc/network.hh"
#include "sim/bitmask.hh"
#include "sim/config.hh"
#include "sim/ring_buffer.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::noc
{

class Crossbar final : public Network
{
  public:
    Crossbar(unsigned num_src, unsigned num_dst, const sim::Config &cfg,
             sim::StatSet &stats, const std::string &name);

    void setDeliver(DeliverFn fn) override { deliver_ = std::move(fn); }

    /**
     * Inject a packet at source port `src` bound for `dst`.
     * pkt.sizeBytes must be set; pkt.injectedAt is stamped here.
     */
    void inject(unsigned src, unsigned dst, mem::Packet &&pkt,
                Cycle now) override;

    /**
     * Eject packets whose arrival time has been reached. O(1) on
     * cycles where nothing can possibly eject: a conservative
     * earliest-ejection bound is min-merged on inject and tightened
     * to the exact value by each full sweep, so the per-port scan
     * only runs on cycles that can deliver.
     */
    void
    tick(Cycle now) override
    {
        if (inFlight_ == 0 || now < earliestEject_)
            return;
        tickSweep(now);
    }

    /**
     * Conservative horizon: never later than the true next ejection
     * (a fast-forward jump landing early finds tick() a no-op and
     * the bound re-tightened).
     */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        if (inFlight_ == 0)
            return kCycleNever;
        return earliestEject_ > now ? earliestEject_ : now + 1;
    }

    /**
     * Injection serializes for at least one cycle (txCycles >= 1 for
     * any non-empty packet) before the fabric's fixed hop latency,
     * so arrive = start + tx + hop >= now + 1 + hopLatency.
     */
    Cycle minTraversalLatency() const override { return 1 + hopLatency_; }

    bool quiescent() const override { return inFlight_ == 0; }

    std::uint64_t
    totalBytes() const override
    {
        return *bytesTotal_ + win_.bytes;
    }

    void flushStatWindow() override;

    void attachTracer(obs::Tracer &tracer) override;
    void attachTranscript(obs::Transcript &transcript,
                          bool response) override;

  private:
    /**
     * Ring entry: a slot index into the packet pool plus the
     * destination port. No ordering key is stored — (arrive, inject
     * order) is preserved by the ring's bucket structure, so the old
     * per-dst priority queues (the single hottest site in profiles
     * before PR 8, and still a log-factor sift per packet after the
     * slot-pool split) collapse into flat appends and pops.
     */
    struct InFlight
    {
        std::uint32_t slot;
        std::uint32_t dst;
    };

    Cycle txCycles(std::uint32_t bytes) const;

    /** Full drain-and-eject sweep; recomputes earliestEject_. */
    void tickSweep(Cycle now);

    sim::StatSet &stats_;
    std::string name_;
    unsigned numSrc_;
    unsigned numDst_;
    std::uint64_t bytesPerCycle_;
    Cycle hopLatency_;

    std::vector<Cycle> srcFree_;
    std::vector<Cycle> dstFree_;
    /**
     * In-flight packets that have not yet crossed the fabric, dense
     * ring indexed by arrival cycle. A tick pops exactly the due
     * entries in (arrive, inject) order and appends them to their
     * port FIFO; packets never move until they are due.
     */
    ArrivalRing<InFlight> ring_;
    /** Arrived packets awaiting a free ejection link, per port, in
     *  exact delivery order by construction. */
    std::vector<sim::RingBuffer<std::uint32_t>> portFifo_;
    /** Ports whose FIFO is non-empty (the ejection pass walks only
     *  set bits, in ascending port order like the old sweep). */
    sim::BitMask pending_;
    /** In-flight packet payloads, indexed by InFlight::slot. */
    sim::SlotPool<mem::Packet> pool_;
    DeliverFn deliver_;
    std::uint64_t inFlight_ = 0;
    /**
     * Lower bound on the earliest cycle any queued packet can eject
     * (kCycleNever when idle). Inject lowers it to the packet's
     * fabric arrival (which ignores ejection-link serialization, so
     * it is conservative); tickSweep() recomputes it exactly from
     * the ring's next arrival and the pending ports' link windows.
     */
    Cycle earliestEject_ = kCycleNever;

    /**
     * Windowed counter block: inject accumulates bytes and per-type
     * tallies here (one dense struct) and flushStatWindow() batches
     * them into the StatSet map nodes. The total packet counter is
     * deliberately NOT windowed: the main loop's progress token
     * reads it every simulated cycle and must see live values.
     */
    struct StatWindow
    {
        std::uint64_t bytes = 0;
        std::uint64_t bytesByType[mem::kNumMsgTypes] = {};
        std::uint64_t packetsByType[mem::kNumMsgTypes] = {};
    };
    StatWindow win_;

    // flush targets in the StatSet (stable map-node addresses)
    std::uint64_t *bytesTotal_;
    std::uint64_t *packetsTotal_; ///< live (progress token), not windowed
    /** Per-MsgType byte/packet counters, cached at construction so
     * the inject hot path never rebuilds stat-name strings. */
    std::uint64_t *bytesByType_[mem::kNumMsgTypes];
    std::uint64_t *packetsByType_[mem::kNumMsgTypes];
    sim::Distribution *latency_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
    obs::Transcript *transcript_ = nullptr;
    bool transcriptResponse_ = false;
};

} // namespace gtsc::noc

#endif // GTSC_NOC_CROSSBAR_HH_
