/**
 * @file
 * ArrivalRing — a dense in-flight ring indexed by due cycle (the
 * TimeWheel shape applied to NoC packet arrivals).
 *
 * Each in-flight entry is bucketed by its absolute arrival cycle,
 * `arrive & (span-1)`, under the **pure bucket** invariant: an entry
 * is inserted directly only while `arrive - base_ < span`, so when
 * cycle c drains, every entry in bucket (c & mask) arrived exactly at
 * c — no generation tags, no per-entry comparisons. Arrivals beyond
 * the window go to a stable overflow list and migrate into the ring
 * at every base advance; an overflow entry with arrival X always
 * predates (has a lower sequence number than) any direct insert with
 * arrival X, because direct inserts for X only become possible after
 * the base advance that migrates it — so buckets stay in injection
 * order by construction.
 *
 * drainDue() therefore visits due entries in exact (arrive, inject
 * order) priority-queue order without a heap: ascending occupied
 * buckets (found by a bitmap scan), each in push order. A cached
 * next-arrival cycle makes the nothing-due check O(1).
 *
 * Bucket vectors are reserved up front (`bucket_reserve`) and keep
 * their capacity across clears, preserving the zero-alloc steady
 * state as long as per-cycle fan-in stays within the reservation
 * (one packet per source per cycle on a serialized injection link).
 */

#ifndef GTSC_NOC_ARRIVAL_RING_HH_
#define GTSC_NOC_ARRIVAL_RING_HH_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/bitmask.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace gtsc::noc
{

/**
 * Default window span. Arrival lag is injection backlog + tx + hop
 * latency, normally well under a hundred cycles; 1024 keeps even
 * heavily backlogged sources in-window, and anything beyond takes
 * the (correct, slower) overflow path.
 */
inline constexpr unsigned kArrivalRingSpan = 1024;

template <typename T>
class ArrivalRing
{
  public:
    /** Size the ring: `span` buckets (power of two), each with
     *  `bucket_reserve` capacity pre-allocated. Call once at setup. */
    void
    init(unsigned span, unsigned bucket_reserve)
    {
        GTSC_ASSERT((span & (span - 1)) == 0 && span != 0,
                    "ArrivalRing span must be a power of two");
        span_ = span;
        mask_ = span - 1;
        buckets_.resize(span_);
        for (auto &b : buckets_)
            b.reserve(bucket_reserve);
        occ_.resize(span_);
        overflow_.reserve(16);
        overflowDue_.reserve(16);
    }

    /** Earliest queued arrival cycle; kCycleNever when empty. O(1). */
    Cycle nextArrival() const { return next_; }

    /**
     * Queue `entry` to surface at cycle `arrive` (> now). `now` is
     * the push cycle: an empty ring re-bases its window to now+1 so a
     * long idle gap (stale base_) cannot push near arrivals onto the
     * overflow path. Re-basing to now+1 — not to `arrive` — keeps the
     * window valid for later same-cycle pushes whose arrival is
     * earlier (sources carry different serialization backlogs).
     */
    void
    push(Cycle now, Cycle arrive, T entry)
    {
        GTSC_ASSERT(arrive > now, "arrival not in the future: ", arrive,
                    " <= ", now);
        if (count_ == 0 && now + 1 > base_)
            base_ = now + 1;
        GTSC_ASSERT(arrive >= base_,
                    "arrival in the past: ", arrive, " < ", base_);
        ++count_;
        if (arrive - base_ < span_) {
            unsigned idx = static_cast<unsigned>(arrive) & mask_;
            buckets_[idx].push_back(std::move(entry));
            occ_.set(idx);
        } else {
            overflow_.push_back(Overflow{arrive, std::move(entry)});
            overflowMin_ = std::min(overflowMin_, arrive);
        }
        next_ = std::min(next_, arrive);
    }

    /**
     * Visit every entry with arrive <= now as f(arrive, entry), in
     * exact (arrive, insertion) order, then advance the window past
     * `now`. The callback must not push into this ring (deliveries
     * that re-inject do so after the drain returns).
     */
    template <typename F>
    void
    drainDue(Cycle now, F &&f)
    {
        // In-window due buckets, ascending. Every occupied bucket
        // maps to one exact cycle in [base_, base_+span) (pure
        // bucket invariant), so the bitmap scan yields cycles in
        // order.
        while (true) {
            Cycle c = ringNext();
            if (c > now)
                break;
            unsigned idx = static_cast<unsigned>(c) & mask_;
            auto &b = buckets_[idx];
            occ_.clear(idx);
            count_ -= b.size();
            for (T &e : b)
                f(c, e);
            b.clear();
        }
        // Due overflow is only reachable when now >= base_+span —
        // the whole window drained above, and every overflow arrival
        // (>= base_+span) sorts after every in-window one. Stable
        // sort restores (arrive, insertion) order among them.
        if (overflowMin_ <= now)
            drainOverflowDue(now, f);
        if (now >= base_)
            base_ = now + 1;
        migrate();
        next_ = std::min(ringNext(), overflowMin_);
    }

  private:
    struct Overflow
    {
        Cycle arrive;
        T entry;
    };

    /** Min occupied in-window cycle via the bucket bitmap. */
    Cycle
    ringNext() const
    {
        unsigned start = static_cast<unsigned>(base_) & mask_;
        unsigned idx = occ_.findNextWrap(start);
        if (idx == sim::BitMask::kNpos)
            return kCycleNever;
        return base_ + ((idx - start) & mask_);
    }

    template <typename F>
    void
    drainOverflowDue(Cycle now, F &&f)
    {
        overflowDue_.clear();
        std::size_t keep = 0;
        for (auto &oe : overflow_) {
            if (oe.arrive <= now)
                overflowDue_.push_back(std::move(oe));
            else
                overflow_[keep++] = std::move(oe);
        }
        overflow_.resize(keep);
        count_ -= overflowDue_.size();
        std::stable_sort(overflowDue_.begin(), overflowDue_.end(),
                         [](const Overflow &a, const Overflow &b) {
                             return a.arrive < b.arrive;
                         });
        for (auto &oe : overflowDue_)
            f(oe.arrive, oe.entry);
    }

    /** Move overflow entries that fit the (advanced) window into
     *  their buckets, preserving relative order. */
    void
    migrate()
    {
        if (overflow_.empty()) {
            overflowMin_ = kCycleNever;
            return;
        }
        std::size_t keep = 0;
        overflowMin_ = kCycleNever;
        for (auto &oe : overflow_) {
            if (oe.arrive - base_ < span_) {
                unsigned idx = static_cast<unsigned>(oe.arrive) & mask_;
                buckets_[idx].push_back(std::move(oe.entry));
                occ_.set(idx);
            } else {
                overflowMin_ = std::min(overflowMin_, oe.arrive);
                overflow_[keep++] = std::move(oe);
            }
        }
        overflow_.resize(keep);
    }

    unsigned span_ = 0;
    unsigned mask_ = 0;
    std::uint64_t count_ = 0;
    Cycle base_ = 0;
    Cycle next_ = kCycleNever;
    Cycle overflowMin_ = kCycleNever;
    std::vector<std::vector<T>> buckets_;
    sim::BitMask occ_;
    std::vector<Overflow> overflow_;
    std::vector<Overflow> overflowDue_;
};

} // namespace gtsc::noc

#endif // GTSC_NOC_ARRIVAL_RING_HH_
