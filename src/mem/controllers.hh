/**
 * @file
 * Abstract cache-controller interfaces the GPU model drives.
 *
 * The SM talks to an L1Controller; L1 and L2 exchange Packets over
 * the interconnect via injected send functions; the L2Controller
 * talks to its DRAM channel directly. Concrete implementations live
 * in src/core (G-TSC) and src/protocols (TC, baselines).
 */

#ifndef GTSC_MEM_CONTROLLERS_HH_
#define GTSC_MEM_CONTROLLERS_HH_

#include <utility>

#include "mem/access.hh"
#include "mem/packet.hh"
#include "sim/small_function.hh"
#include "sim/types.hh"

// Horizon contract (hybrid cycle/event main loop)
// -----------------------------------------------
// Every ticked component reports, via nextWorkCycle(now), the
// earliest future cycle at which its tick() could do anything
// observable: change state, accept or emit a packet, or mutate a
// statistic (per-cycle occupancy counters included). The GPU main
// loop skips straight to the minimum horizon when every component is
// idle, so the contract is strict:
//
//  - The returned cycle must be > now (kCycleNever when the
//    component is fully quiescent and only external input — a
//    delivered packet, an event-queue callback — can wake it).
//  - It must be conservative: ticking the component at any cycle in
//    (now, horizon) must be a no-op, including stat updates.
//  - It need not be tight, but every cycle it defers is a cycle the
//    simulator cannot skip; returning now + 1 is always correct and
//    simply disables fast-forward while the condition holds.
//
// Work that completes through the shared EventQueue does not need to
// be reported: the main loop folds events_.nextEventCycle() into the
// same minimum.
//
// Wake contract (active-set scheduling, DESIGN.md §10)
// ----------------------------------------------------
// With gpu.active_set=1 the main loop goes further: a component is
// ticked *only* on cycles where it has work. After each tick it is
// parked and re-armed at its nextWorkCycle() horizon; between those
// cycles it is never ticked at all. A parked component can acquire
// work earlier than its horizon only through an external entry point
// — receiveRequest/receiveResponse/access, a network inject, a DRAM
// push — or through one of its own event-queue callbacks. Every such
// path that can create tick() work must call the wake hook with the
// current cycle:
//
//  - Waking is min-merged: waking an already-armed component at a
//    later cycle is a no-op, so wake sites may fire eagerly and
//    redundantly. An unnecessary wake costs one no-op tick; a missed
//    wake silently diverges from the always-tick loop (the
//    equivalence goldens catch it).
//  - A wake at the current cycle ticks the component this cycle if
//    its phase has not run yet, else next cycle — exactly when the
//    always-tick loop would next tick it with the new state visible.
//  - Entry points that only schedule event-queue callbacks (and
//    create no tick() work) need no wake; the loop runs the event
//    queues every cycle it executes and folds nextEventCycle() into
//    its jump horizon.

namespace gtsc::obs
{
class Tracer;
}

namespace gtsc::mem
{

/**
 * Private (per-SM) cache controller.
 *
 * Completion is asynchronous: access() returning true only means the
 * access was accepted (it may complete the same call for an L1 hit).
 * Returning false is a structural reject (MSHR full, ...) and the SM
 * must retry the same access on a later cycle.
 */
class L1Controller
{
  public:
    /** A load finished; result carries data + checker timing.
     * SmallFunction (not std::function): these fire once per memory
     * instruction, and the inline buffer keeps the closure out of
     * the heap and the call devirtualized to one indirect jump. */
    using LoadDoneFn =
        sim::SmallFunction<void(const Access &, const AccessResult &)>;
    /** A store was globally performed; gwct != 0 only for TC-Weak. */
    using StoreDoneFn =
        sim::SmallFunction<void(const Access &, Cycle gwct)>;
    /** Inject a request packet into the request network. */
    using SendFn = sim::SmallFunction<void(Packet &&)>;
    /** Re-arm this parked component (wake contract above). */
    using WakeFn = sim::SmallFunction<void(Cycle)>;

    virtual ~L1Controller() = default;

    void setLoadDone(LoadDoneFn f) { loadDone_ = std::move(f); }
    void setStoreDone(StoreDoneFn f) { storeDone_ = std::move(f); }
    void setSend(SendFn f) { send_ = std::move(f); }
    void setWakeHook(WakeFn f) { wake_ = std::move(f); }

    /** Accept a coalesced access; false = structural stall, retry. */
    virtual bool access(const Access &access, Cycle now) = 0;

    /** A response packet arrived from the interconnect. */
    virtual void receiveResponse(Packet &&pkt, Cycle now) = 0;

    /** Per-cycle housekeeping (replays, latency pipelines). */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle at which tick() could make progress; see
     * the horizon contract above. The default never skips.
     */
    virtual Cycle nextWorkCycle(Cycle now) const { return now + 1; }

    /** Kernel-boundary flush (GPU L1s are flushed between kernels). */
    virtual void flush(Cycle now) = 0;

    /**
     * A warp failed a spin-wait iteration on this address. G-TSC
     * advances the warp's logical clock so the next probe renews its
     * lease instead of re-reading a stale local copy forever (the
     * Tardis livelock-avoidance rule). Other protocols ignore this.
     */
    virtual void noteSpinRetry(WarpId warp, Addr line_addr)
    {
        (void)warp;
        (void)line_addr;
    }

    /** Outstanding state that must drain before kernel end. */
    virtual bool quiescent() const = 0;

    /**
     * Opt into event tracing (obs subsystem). Implementations
     * register a track and record protocol events; the default is a
     * no-op so protocols without instrumentation keep working.
     */
    virtual void attachTracer(obs::Tracer &tracer) { (void)tracer; }

  protected:
    /** Notify the scheduler this component has tick() work at `now`
     *  (no-op when unhooked — the always-tick loops install none). */
    void
    wake(Cycle now)
    {
        if (wake_)
            wake_(now);
    }

    LoadDoneFn loadDone_;
    StoreDoneFn storeDone_;
    SendFn send_;
    WakeFn wake_;
};

/**
 * Shared (per-partition) cache controller.
 */
class L2Controller
{
  public:
    /** Inject a response packet into the response network. */
    using SendFn = sim::SmallFunction<void(Packet &&)>;
    /** Re-arm this parked component (wake contract above). */
    using WakeFn = sim::SmallFunction<void(Cycle)>;

    virtual ~L2Controller() = default;

    void setSend(SendFn f) { send_ = std::move(f); }
    void setWakeHook(WakeFn f) { wake_ = std::move(f); }

    /** A request packet arrived from the interconnect. */
    virtual void receiveRequest(Packet &&pkt, Cycle now) = 0;

    /** Per-cycle housekeeping (service queues, stalled stores). */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle at which tick() could make progress; see
     * the horizon contract above. The default never skips.
     */
    virtual Cycle nextWorkCycle(Cycle now) const { return now + 1; }

    /**
     * Kernel-boundary flush: write dirty lines back to memory and
     * invalidate, so host-side re-initialization between kernels is
     * visible. Protocol bookkeeping (e.g. G-TSC's mem_ts) must be
     * preserved across the flush. Only called when quiescent.
     */
    virtual void flushAll(Cycle now) { (void)now; }

    /** Outstanding state that must drain before simulation end. */
    virtual bool quiescent() const = 0;

    /** Opt into event tracing; no-op by default (see L1Controller). */
    virtual void attachTracer(obs::Tracer &tracer) { (void)tracer; }

  protected:
    /** Notify the scheduler this component has tick() work at `now`. */
    void
    wake(Cycle now)
    {
        if (wake_)
            wake_(now);
    }

    SendFn send_;
    WakeFn wake_;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_CONTROLLERS_HH_
