/**
 * @file
 * Messages exchanged between private (L1) and shared (L2) caches.
 *
 * The message vocabulary follows Table I of the G-TSC paper:
 * BusRd (read / renewal request), BusWr (write request), BusFill
 * (fill response with data), BusRnw (renewal response, *no data*),
 * BusWrAck (write acknowledgment). The baseline and TC protocols
 * reuse the same vocabulary with their own field subsets; each
 * protocol computes its own wire size so the NoC traffic statistics
 * (Figure 15) reflect the per-protocol payloads.
 */

#ifndef GTSC_MEM_PACKET_HH_
#define GTSC_MEM_PACKET_HH_

#include <cstdint>
#include <string>

#include "mem/line_data.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

enum class MsgType : std::uint8_t
{
    BusRd,    ///< L1 -> L2 read or renewal request
    BusWr,    ///< L1 -> L2 write request (write-through L1)
    BusFill,  ///< L2 -> L1 fill response carrying line data
    BusRnw,   ///< L2 -> L1 renewal response (lease only, no data)
    BusWrAck, ///< L2 -> L1 write acknowledgment
};

/** Number of MsgType values (per-type stat arrays size on this). */
inline constexpr unsigned kNumMsgTypes = 5;

/** Human-readable message name (stats keys, traces). */
const char *msgTypeName(MsgType t);

/**
 * True for message types whose `Packet::data` payload is meaningful.
 * BusRd carries no data by definition; BusRnw and BusWrAck are the
 * paper's explicitly data-less responses (Table I). Receivers never
 * read `data` for these types, so moves skip the 128-byte copy.
 */
inline constexpr bool
carriesData(MsgType t)
{
    return t == MsgType::BusWr || t == MsgType::BusFill;
}

/**
 * One NoC message. Protocols fill only the fields they use;
 * `sizeBytes` must be set by the sender before injection and is what
 * the interconnect serializes and accounts.
 */
struct Packet
{
    MsgType type = MsgType::BusRd;
    Addr lineAddr = 0;
    SmId src = 0;           ///< requesting SM
    PartitionId part = 0;   ///< target / replying L2 partition
    /**
     * Originating warp (diagnostics only: probe attribution and
     * protocol transcripts). Not part of any protocol's wire
     * payload, so it never contributes to sizeBytes.
     */
    WarpId warp = 0;

    // --- G-TSC fields (logical timestamps) ---
    Ts wts = 0;             ///< write timestamp (0 = "no local copy")
    Ts rts = 0;             ///< read timestamp / lease end
    Ts warpTs = 0;          ///< requesting warp's timestamp
    /**
     * BusWrAck: wts of the version the store was applied to. The L1
     * keeps its (locally merged) line only when this matches the
     * version it merged into; otherwise the unwritten words are
     * stale and the line self-invalidates.
     */
    Ts prevWts = 0;
    std::uint32_t epoch = 0;///< timestamp epoch (overflow/reset)
    bool tsReset = false;   ///< response carries a timestamp reset

    // --- TC fields (physical time) ---
    Cycle leaseEnd = 0;     ///< absolute expiry cycle of granted lease
    Cycle gwct = 0;         ///< global write completion time (TC-Weak)

    // --- payload ---
    std::uint32_t wordMask = 0; ///< words carried/written
    LineData data{};

    std::uint64_t reqId = 0;    ///< request/response matching
    std::uint32_t sizeBytes = 0;///< wire size, set by the sender
    Cycle injectedAt = 0;       ///< for NoC latency statistics

    Packet() = default;
    Packet(const Packet &) = default;
    Packet &operator=(const Packet &) = default;

    /**
     * Moves copy the 128-byte line payload only when the message
     * type actually carries one (carriesData); the NoC queues and
     * the sharded main loop move packets end-to-end, so BusRd /
     * BusRnw / BusWrAck hops never touch `data`. The moved-from
     * packet's `data` is left unspecified for data-less types.
     */
    Packet(Packet &&o) noexcept { moveFrom(o); }

    Packet &
    operator=(Packet &&o) noexcept
    {
        if (this != &o)
            moveFrom(o);
        return *this;
    }

    std::string toString() const;

  private:
    void
    moveFrom(Packet &o)
    {
        type = o.type;
        lineAddr = o.lineAddr;
        src = o.src;
        part = o.part;
        warp = o.warp;
        wts = o.wts;
        rts = o.rts;
        warpTs = o.warpTs;
        prevWts = o.prevWts;
        epoch = o.epoch;
        tsReset = o.tsReset;
        leaseEnd = o.leaseEnd;
        gwct = o.gwct;
        wordMask = o.wordMask;
        if (carriesData(type))
            data = o.data;
        reqId = o.reqId;
        sizeBytes = o.sizeBytes;
        injectedAt = o.injectedAt;
    }
};

/** Number of bytes occupied by `word_mask` words, in 32B sectors. */
std::uint32_t maskedDataBytes(std::uint32_t word_mask);

} // namespace gtsc::mem

#endif // GTSC_MEM_PACKET_HH_
