/**
 * @file
 * Miss Status Holding Registers.
 *
 * One entry per outstanding line; accesses from different warps to
 * the same line merge into the entry's waiter list so a single
 * request goes to the lower level (Section II-A / V-B of the paper).
 * The same structure also parks accesses that are blocked behind a
 * locked (store-in-flight) line for G-TSC's update-visibility rule.
 */

#ifndef GTSC_MEM_MSHR_HH_
#define GTSC_MEM_MSHR_HH_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "mem/access.hh"
#include "obs/events.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

struct MshrEntry
{
    Addr lineAddr = 0;
    /** A BusRd has been sent and its fill is pending. */
    bool requestSent = false;
    /** Outstanding requests for this line (forward-all sends one
     * per merged load; combining keeps this at 1). */
    unsigned outstanding = 0;
    /** Entry exists only to park accesses behind a locked line. */
    bool lockWait = false;
    /** wts the outstanding BusRd carried (G-TSC renewal matching). */
    Ts requestWts = 0;
    /** Accesses to replay when the entry resolves, in arrival order. */
    std::vector<Access> waiters;
};

/** Fixed-capacity MSHR table keyed by line address. */
class Mshr
{
  public:
    explicit Mshr(std::size_t capacity) : capacity_(capacity) {}

    MshrEntry *
    find(Addr line_addr)
    {
        auto it = entries_.find(line_addr);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Allocate an entry; nullptr when the table is full. */
    MshrEntry *
    alloc(Addr line_addr)
    {
        if (entries_.size() >= capacity_)
            return nullptr;
        MshrEntry &e = entries_[line_addr];
        e.lineAddr = line_addr;
        if (trace_) {
            trace_->record(track_,
                           obs::Event{clock_->now(), line_addr,
                                      entries_.size(), 0,
                                      obs::EventKind::MshrAlloc, 0, 0});
        }
        return &e;
    }

    void
    free(Addr line_addr)
    {
        if (entries_.erase(line_addr) && trace_) {
            trace_->record(track_,
                           obs::Event{clock_->now(), line_addr,
                                      entries_.size(), 0,
                                      obs::EventKind::MshrRetire, 0, 0});
        }
    }

    /**
     * Enable alloc/retire event tracing. `clock` supplies the
     * current cycle (EventQueue::now() tracks the main loop).
     */
    void
    setTrace(obs::Tracer *tracer, obs::Tracer::TrackId track,
             const sim::EventQueue *clock)
    {
        trace_ = tracer;
        track_ = track;
        clock_ = clock;
    }

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Iterate over entries (diagnostics/tests). */
    const std::unordered_map<Addr, MshrEntry> &entries() const
    {
        return entries_;
    }

    void clear() { entries_.clear(); }

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, MshrEntry> entries_;
    obs::Tracer *trace_ = nullptr;
    obs::Tracer::TrackId track_ = 0;
    const sim::EventQueue *clock_ = nullptr;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_MSHR_HH_
