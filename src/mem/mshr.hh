/**
 * @file
 * Miss Status Holding Registers.
 *
 * One entry per outstanding line; accesses from different warps to
 * the same line merge into the entry's waiter list so a single
 * request goes to the lower level (Section II-A / V-B of the paper).
 * The same structure also parks accesses that are blocked behind a
 * locked (store-in-flight) line for G-TSC's update-visibility rule.
 *
 * The table is capacity-bounded (typically 32-64 entries), so lookup
 * is a linear scan over a packed key vector — cheaper than hashing a
 * line address and chasing unordered_map buckets, and the dominant
 * cost in profiles was exactly those bucket chases. Entries live in
 * a deque-backed pool: free() returns the slot without destroying
 * the entry, so waiter-vector capacity is recycled across misses and
 * the MSHR stops allocating once warmed up. Entry pointers are
 * stable across alloc/free (deque never moves elements).
 */

#ifndef GTSC_MEM_MSHR_HH_
#define GTSC_MEM_MSHR_HH_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "mem/access.hh"
#include "obs/events.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

struct MshrEntry
{
    Addr lineAddr = 0;
    /** A BusRd has been sent and its fill is pending. */
    bool requestSent = false;
    /** Outstanding requests for this line (forward-all sends one
     * per merged load; combining keeps this at 1). */
    unsigned outstanding = 0;
    /** Entry exists only to park accesses behind a locked line. */
    bool lockWait = false;
    /** wts the outstanding BusRd carried (G-TSC renewal matching). */
    Ts requestWts = 0;
    /** Accesses to replay when the entry resolves, in arrival order. */
    std::vector<Access> waiters;
};

/** Fixed-capacity MSHR table keyed by line address. */
class Mshr
{
  public:
    explicit Mshr(std::size_t capacity) : capacity_(capacity) {}

    MshrEntry *
    find(Addr line_addr)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == line_addr)
                return &slots_[slotOf_[i]];
        }
        return nullptr;
    }

    /** Allocate an entry; nullptr when the table is full. The
     *  entry's fields are reset but its waiter vector keeps the
     *  capacity it accumulated in earlier lives. */
    MshrEntry *
    alloc(Addr line_addr)
    {
        if (keys_.size() >= capacity_)
            return nullptr;
        std::uint32_t slot;
        if (free_.empty()) {
            slots_.emplace_back();
            slot = static_cast<std::uint32_t>(slots_.size() - 1);
        } else {
            slot = free_.back();
            free_.pop_back();
        }
        keys_.push_back(line_addr);
        slotOf_.push_back(slot);
        MshrEntry &e = slots_[slot];
        e.lineAddr = line_addr;
        e.requestSent = false;
        e.outstanding = 0;
        e.lockWait = false;
        e.requestWts = 0;
        e.waiters.clear();
        if (trace_) {
            trace_->record(track_,
                           obs::Event{clock_->now(), line_addr,
                                      keys_.size(), 0,
                                      obs::EventKind::MshrAlloc, 0, 0});
        }
        return &e;
    }

    void
    free(Addr line_addr)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != line_addr)
                continue;
            free_.push_back(slotOf_[i]);
            keys_[i] = keys_.back();
            keys_.pop_back();
            slotOf_[i] = slotOf_.back();
            slotOf_.pop_back();
            if (trace_) {
                trace_->record(track_,
                               obs::Event{clock_->now(), line_addr,
                                          keys_.size(), 0,
                                          obs::EventKind::MshrRetire, 0,
                                          0});
            }
            return;
        }
    }

    /**
     * Enable alloc/retire event tracing. `clock` supplies the
     * current cycle (EventQueue::now() tracks the main loop).
     */
    void
    setTrace(obs::Tracer *tracer, obs::Tracer::TrackId track,
             const sim::EventQueue *clock)
    {
        trace_ = tracer;
        track_ = track;
        clock_ = clock;
    }

    bool full() const { return keys_.size() >= capacity_; }
    std::size_t size() const { return keys_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Visit live entries (diagnostics/tests); order unspecified. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            f(slots_[slotOf_[i]]);
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            free_.push_back(slotOf_[i]);
        keys_.clear();
        slotOf_.clear();
    }

  private:
    std::size_t capacity_;
    std::vector<Addr> keys_;
    std::vector<std::uint32_t> slotOf_;
    std::deque<MshrEntry> slots_;
    std::vector<std::uint32_t> free_;
    obs::Tracer *trace_ = nullptr;
    obs::Tracer::TrackId track_ = 0;
    const sim::EventQueue *clock_ = nullptr;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_MSHR_HH_
