/**
 * @file
 * Observation hooks the cache controllers call so an external checker
 * can validate coherence. Two vocabularies are provided: logical
 * timestamps (G-TSC) and physical time with lease grants (TC and the
 * L2-only baselines). A null probe is allowed everywhere.
 */

#ifndef GTSC_MEM_COHERENCE_PROBE_HH_
#define GTSC_MEM_COHERENCE_PROBE_HH_

#include <cstdint>

#include "sim/types.hh"

namespace gtsc::mem
{

/** "Unknown originator" sentinels for probe calls. */
inline constexpr SmId kNoSm = static_cast<SmId>(~SmId{0});
inline constexpr WarpId kNoWarp = static_cast<WarpId>(~WarpId{0});

/**
 * Every hook identifies the originating SM and warp so checker
 * diagnostics can name the offender; pass kNoSm/kNoWarp when the
 * caller genuinely does not know.
 */
class CoherenceProbe
{
  public:
    virtual ~CoherenceProbe() = default;

    /** G-TSC: a store committed at L2 with write timestamp `wts`. */
    virtual void onStoreTs(Addr word_addr, std::uint32_t epoch, Ts wts,
                           std::uint32_t value, SmId sm,
                           WarpId warp) = 0;

    /**
     * G-TSC: a load observed `value` at effective logical time `ts`
     * (ts = max(warp_ts, block wts), guaranteed <= block rts).
     */
    virtual void onLoadTs(Addr word_addr, std::uint32_t epoch, Ts ts,
                          std::uint32_t value, SmId sm,
                          WarpId warp) = 0;

    /** Physical-time protocols: store globally performed at `when`. */
    virtual void onStorePhys(Addr word_addr, Cycle when,
                             std::uint32_t value, SmId sm,
                             WarpId warp) = 0;

    /**
     * Physical-time protocols: a load at cycle `when` returned
     * `value` that the L2 provided/renewed at cycle `grant`.
     */
    virtual void onLoadPhys(Addr word_addr, Cycle grant, Cycle when,
                            std::uint32_t value, SmId sm,
                            WarpId warp) = 0;

    /** G-TSC timestamp overflow reset: a new epoch begins. */
    virtual void onEpochReset(std::uint32_t new_epoch) = 0;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_COHERENCE_PROBE_HH_
