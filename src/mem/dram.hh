/**
 * @file
 * GDDR DRAM channel model.
 *
 * One channel per L2 partition (the GPGPU-Sim memory-partition
 * layout the paper simulates). FCFS service with per-bank open-row
 * tracking: a row hit costs tRowHit, a row miss tRowMiss, and every
 * transfer occupies the data bus for lineBytes / busBytesPerCycle
 * cycles, which bounds per-channel bandwidth under load.
 */

#ifndef GTSC_MEM_DRAM_HH_
#define GTSC_MEM_DRAM_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/line_data.hh"
#include "mem/main_memory.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/slot_pool.hh"
#include "sim/small_function.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

class DramChannel
{
  public:
    using ReadCallback = std::function<void(const LineData &)>;
    /** Re-arm this parked channel (wake contract,
     *  mem/controllers.hh). The L2s push requests directly, so the
     *  channel carries its own hook; both push paths fire it. */
    using WakeFn = sim::SmallFunction<void(Cycle)>;

    DramChannel(const sim::Config &cfg, sim::StatSet &stats,
                sim::EventQueue &events, MainMemory &memory,
                const std::string &name);

    void setWakeHook(WakeFn f) { wake_ = std::move(f); }

    /** Enqueue a line read; cb fires when data returns. */
    void pushRead(Addr line_addr, ReadCallback cb);

    /** Enqueue a (partial) line write-back. */
    void pushWrite(Addr line_addr, const LineData &data,
                   std::uint32_t word_mask);

    /** Advance the channel: start the next request when free. */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which tick() could start a request
     * (horizon contract, mem/controllers.hh). Requests already in
     * service complete through the shared event queue.
     */
    Cycle
    nextWorkCycle(Cycle now) const
    {
        if (queue_.empty())
            return kCycleNever;
        return busBusyUntil_ > now ? busBusyUntil_ : now + 1;
    }

    bool idle() const { return queue_.empty() && pending_ == 0; }
    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * Enable activate/return event tracing. `channel` disambiguates
     * the track name (every channel shares the stat name "dram").
     */
    void attachTracer(obs::Tracer &tracer, unsigned channel);

  private:
    struct Request
    {
        Addr lineAddr;
        bool isWrite;
        LineData data;
        std::uint32_t wordMask;
        ReadCallback cb;
    };

    /** In-service read payloads parked here so the return event
     *  captures only [this, slot] — the 128-byte line plus callback
     *  would otherwise heap-allocate a closure per DRAM read. */
    struct ReadReturn
    {
        Addr lineAddr;
        LineData data;
        ReadCallback cb;
    };

    unsigned bankOf(Addr line_addr) const;
    Addr rowOf(Addr line_addr) const;

    sim::StatSet &stats_;
    sim::EventQueue &events_;
    MainMemory &memory_;
    std::string name_;

    // Counters cached at construction (service-loop hot path).
    std::uint64_t *reads_;
    std::uint64_t *writes_;
    std::uint64_t *rowHits_;
    std::uint64_t *rowMisses_;
    std::uint64_t *frfcfsReorders_;

    Cycle tRowHit_;
    Cycle tRowMiss_;
    Cycle burstCycles_;
    unsigned numBanks_;
    unsigned rowShift_;
    /** FR-FCFS scheduling (dram.scheduler=frfcfs). */
    bool frfcfs_ = false;
    std::size_t schedWindow_ = 16;

    WakeFn wake_;
    sim::RingBuffer<Request> queue_;
    sim::SlotPool<ReadReturn> returns_;
    std::vector<Addr> openRow_;   ///< per-bank open row (kCycleNever=closed)
    Cycle busBusyUntil_ = 0;
    unsigned pending_ = 0;        ///< requests in service (cb not fired)

    obs::Tracer *trace_ = nullptr;
    obs::Tracer::TrackId track_ = 0;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_DRAM_HH_
