#include "mem/dram.hh"

#include "sim/log.hh"

namespace gtsc::mem
{

DramChannel::DramChannel(const sim::Config &cfg, sim::StatSet &stats,
                         sim::EventQueue &events, MainMemory &memory,
                         const std::string &name)
    : stats_(stats), events_(events), memory_(memory), name_(name)
{
    reads_ = &stats_.counter(name_ + ".reads");
    writes_ = &stats_.counter(name_ + ".writes");
    rowHits_ = &stats_.counter(name_ + ".row_hits");
    rowMisses_ = &stats_.counter(name_ + ".row_misses");
    frfcfsReorders_ = &stats_.counter(name_ + ".frfcfs_reorders");
    tRowHit_ = cfg.getUint("dram.t_row_hit", 40);
    tRowMiss_ = cfg.getUint("dram.t_row_miss", 100);
    numBanks_ = static_cast<unsigned>(cfg.getUint("dram.banks", 8));
    std::string sched = cfg.getString("dram.scheduler", "fcfs");
    if (sched == "frfcfs")
        frfcfs_ = true;
    else if (sched != "fcfs")
        GTSC_FATAL("dram.scheduler must be fcfs|frfcfs, got '", sched,
                   "'");
    schedWindow_ = cfg.getUint("dram.sched_window", 16);
    std::uint64_t bus_bw = cfg.getUint("dram.bus_bytes_per_cycle", 16);
    std::uint64_t row_bytes = cfg.getUint("dram.row_bytes", 2048);
    if (bus_bw == 0 || numBanks_ == 0)
        GTSC_FATAL("dram.bus_bytes_per_cycle and dram.banks must be > 0");
    burstCycles_ = (kLineBytes + bus_bw - 1) / bus_bw;
    rowShift_ = 0;
    while ((std::uint64_t{1} << rowShift_) < row_bytes)
        ++rowShift_;
    openRow_.assign(numBanks_, kCycleNever);
}

void
DramChannel::attachTracer(obs::Tracer &tracer, unsigned channel)
{
    trace_ = &tracer;
    track_ = tracer.track(name_ + std::to_string(channel));
}

unsigned
DramChannel::bankOf(Addr line_addr) const
{
    // Banks interleave at row granularity so consecutive lines in a
    // row share the open-row benefit.
    return static_cast<unsigned>(line_addr >> rowShift_) % numBanks_;
}

Addr
DramChannel::rowOf(Addr line_addr) const
{
    return line_addr >> rowShift_;
}

void
DramChannel::pushRead(Addr line_addr, ReadCallback cb)
{
    queue_.push_back(Request{line_addr, false, LineData{}, 0,
                             std::move(cb)});
    ++(*reads_);
    // Earliest cycle the new request could start service; the
    // scheduler clamps past cycles to "due now".
    if (wake_)
        wake_(busBusyUntil_);
}

void
DramChannel::pushWrite(Addr line_addr, const LineData &data,
                       std::uint32_t word_mask)
{
    queue_.push_back(Request{line_addr, true, data, word_mask, nullptr});
    ++(*writes_);
    if (wake_)
        wake_(busBusyUntil_);
}

void
DramChannel::tick(Cycle now)
{
    // Start at most one request per cycle once the data bus frees up.
    if (queue_.empty() || now < busBusyUntil_)
        return;

    // FR-FCFS: prefer the oldest row hit within the scheduling
    // window, but never reorder requests for the same line (the L2
    // relies on per-line write-back -> refetch order).
    std::size_t pick = 0;
    if (frfcfs_) {
        std::size_t window = std::min<std::size_t>(schedWindow_,
                                                   queue_.size());
        for (std::size_t i = 0; i < window; ++i) {
            const Request &cand = queue_[i];
            if (openRow_[bankOf(cand.lineAddr)] != rowOf(cand.lineAddr))
                continue;
            bool conflict = false;
            for (std::size_t j = 0; j < i; ++j)
                conflict |= (queue_[j].lineAddr == cand.lineAddr);
            if (!conflict) {
                pick = i;
                if (i != 0)
                    ++(*frfcfsReorders_);
                break;
            }
        }
    }

    Request req = std::move(queue_[pick]);
    if (pick == 0)
        queue_.pop_front();
    else
        queue_.erase(pick);

    unsigned bank = bankOf(req.lineAddr);
    Addr row = rowOf(req.lineAddr);
    bool row_hit = (openRow_[bank] == row);
    openRow_[bank] = row;
    Cycle access_lat = (row_hit ? tRowHit_ : tRowMiss_) + burstCycles_;
    ++(*(row_hit ? rowHits_ : rowMisses_));

    if (trace_) {
        trace_->record(track_,
                       obs::Event{now, req.lineAddr, access_lat, 0,
                                  obs::EventKind::DramActivate,
                                  static_cast<std::uint16_t>(bank),
                                  static_cast<std::uint16_t>(row_hit)});
    }

    busBusyUntil_ = now + burstCycles_;

    if (req.isWrite) {
        // Functional write at service time keeps FCFS read-after-write
        // within this channel correct.
        memory_.writeMasked(req.lineAddr, req.data, req.wordMask);
        return;
    }

    ++pending_;
    std::uint32_t slot = returns_.acquire();
    ReadReturn &ret = returns_[slot];
    ret.lineAddr = req.lineAddr;
    ret.data = memory_.readLine(req.lineAddr);
    ret.cb = std::move(req.cb);
    events_.schedule(now + access_lat, [this, slot]() {
        ReadReturn &r = returns_[slot];
        --pending_;
        if (trace_) {
            trace_->record(track_,
                           obs::Event{events_.now(), r.lineAddr, 0, 0,
                                      obs::EventKind::DramReturn, 0,
                                      0});
        }
        r.cb(r.data);
        returns_.release(slot);
    });
}

} // namespace gtsc::mem
