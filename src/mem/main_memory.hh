/**
 * @file
 * Functional backing store for the whole simulated GPU memory.
 * Lines not yet written read as zero.
 */

#ifndef GTSC_MEM_MAIN_MEMORY_HH_
#define GTSC_MEM_MAIN_MEMORY_HH_

#include <unordered_map>

#include "mem/line_data.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

class MainMemory
{
  public:
    /** Read a full line (zero if never written). */
    LineData
    readLine(Addr line_addr) const
    {
        auto it = lines_.find(line_addr);
        return it == lines_.end() ? LineData{} : it->second;
    }

    void
    writeLine(Addr line_addr, const LineData &data)
    {
        lines_[line_addr] = data;
    }

    /** Merge only the masked words (partial write-back). */
    void
    writeMasked(Addr line_addr, const LineData &data,
                std::uint32_t word_mask)
    {
        lines_[line_addr].mergeMasked(data, word_mask);
    }

    /** Convenience word accessors for workload setup/verification. */
    std::uint32_t
    readWord(Addr byte_addr) const
    {
        return readLine(lineAlign(byte_addr)).word(wordInLine(byte_addr));
    }

    void
    writeWord(Addr byte_addr, std::uint32_t value)
    {
        lines_[lineAlign(byte_addr)].setWord(wordInLine(byte_addr), value);
    }

    std::size_t footprintLines() const { return lines_.size(); }

  private:
    std::unordered_map<Addr, LineData> lines_;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_MAIN_MEMORY_HH_
