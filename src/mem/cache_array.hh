/**
 * @file
 * Set-associative tag/data array with LRU replacement.
 *
 * The array is protocol-agnostic: every block carries a BlockMeta
 * that the coherence protocols interpret (logical timestamps for
 * G-TSC, absolute lease expiry for TC). Victim selection accepts a
 * predicate so TC's inclusive L2 can refuse to evict blocks with
 * unexpired leases (delayed eviction, Section II-D3).
 */

#ifndef GTSC_MEM_CACHE_ARRAY_HH_
#define GTSC_MEM_CACHE_ARRAY_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/line_data.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

/** Per-block coherence metadata; protocols use the fields they need. */
struct BlockMeta
{
    // G-TSC (logical time)
    Ts wts = 0;
    Ts rts = 0;
    std::uint32_t epoch = 0;
    /**
     * Consecutive renewals since the last data change (adaptive
     * lease prediction, Tardis-2.0 style; gtsc.adaptive_lease).
     */
    std::uint8_t renewStreak = 0;

    // TC (physical time)
    Cycle leaseEnd = 0;
    /** Cycle the L2 provided/renewed this data (checker bookkeeping). */
    Cycle grant = 0;
};

/**
 * Hot per-way record: tag, state and coherence metadata only. The
 * 128-byte LineData payload lives in a parallel cold array inside
 * CacheArray (reach it through dataOf()), so a set probe walks a few
 * dense ~48-byte records instead of dragging a cache line of payload
 * per way through the host's L1.
 */
struct CacheBlock
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;          ///< full aligned line address (tag)
    std::uint64_t lastUse = 0;  ///< LRU stamp
    BlockMeta meta;
};

/**
 * A set-associative cache structure.
 *
 * Capacity and associativity are fixed at construction; the line
 * size is the global kLineBytes. Lookups do not update LRU (callers
 * call touch() on a real access so probes stay side-effect free).
 *
 * Storage is struct-of-arrays: CacheBlock metadata in one dense
 * row-major vector (the only thing probes touch) and LineData
 * payloads in a parallel vector, indexed identically.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     */
    CacheArray(std::size_t size_bytes, std::size_t assoc);

    std::size_t numSets() const { return numSets_; }
    std::size_t assoc() const { return assoc_; }
    std::size_t sizeBytes() const { return numSets_ * assoc_ * kLineBytes; }

    /**
     * Find a valid block holding this line; nullptr on miss. Probes
     * the set's most-recently-used way first (the overwhelmingly
     * common hit) before scanning the rest; the returned block is
     * identical either way since a line occupies at most one way.
     */
    CacheBlock *lookup(Addr line_addr);
    const CacheBlock *lookup(Addr line_addr) const;

    /** Update the block's LRU stamp. */
    void touch(CacheBlock &blk);

    /** Payload of a block returned by lookup()/victim(). */
    LineData &
    dataOf(CacheBlock &blk)
    {
        return data_[indexOf(blk)];
    }
    const LineData &
    dataOf(const CacheBlock &blk) const
    {
        return data_[indexOf(blk)];
    }

    /**
     * Drop a block. All invalidations go through here (not direct
     * `valid = false` writes) so the array can keep any derived
     * lookup structures coherent with the tag state.
     */
    void invalidate(CacheBlock &blk) { blk.valid = false; }

    /**
     * Choose a victim way for this line: an invalid way if any,
     * otherwise the LRU way satisfying `evictable` (all ways are
     * evictable when the predicate is empty). Returns nullptr when
     * every candidate is pinned (TC delayed eviction stalls).
     */
    CacheBlock *victim(Addr line_addr,
                       const std::function<bool(const CacheBlock &)>
                           &evictable = nullptr);

    /**
     * Install a line into `blk` (as returned by victim()); resets
     * metadata, marks valid, touches LRU. The caller is responsible
     * for writing back the previous contents first.
     */
    void insert(CacheBlock &blk, Addr line_addr);

    /** Invalidate every block (kernel-boundary flush). */
    void invalidateAll();

    /**
     * Apply fn to every valid block. Templated (not std::function):
     * flush and writeback scans run this over every block, and the
     * direct call lets the compiler inline the visitor.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &blk : blocks_) {
            if (blk.valid)
                fn(blk);
        }
    }

    /** Set index for a line address (exposed for tests). */
    std::size_t setIndex(Addr line_addr) const;

  private:
    std::size_t
    indexOf(const CacheBlock &blk) const
    {
        return static_cast<std::size_t>(&blk - blocks_.data());
    }

    std::size_t numSets_;
    std::size_t assoc_;
    std::uint64_t useStamp_ = 0;
    std::vector<CacheBlock> blocks_; ///< numSets_ x assoc_, row-major
    std::vector<LineData> data_;     ///< cold payloads, same indexing
    std::vector<std::uint32_t> mruWay_; ///< last touched way per set
};

} // namespace gtsc::mem

#endif // GTSC_MEM_CACHE_ARRAY_HH_
