#include "mem/cache_array.hh"

#include "sim/log.hh"

namespace gtsc::mem
{

namespace
{

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(std::size_t size_bytes, std::size_t assoc)
    : numSets_(0), assoc_(assoc)
{
    if (assoc == 0)
        GTSC_FATAL("cache associativity must be > 0");
    if (size_bytes % (assoc * kLineBytes) != 0)
        GTSC_FATAL("cache size ", size_bytes,
                   " not divisible by assoc*line (", assoc * kLineBytes,
                   ")");
    numSets_ = size_bytes / (assoc * kLineBytes);
    if (!isPow2(numSets_))
        GTSC_FATAL("cache set count ", numSets_, " must be a power of 2");
    blocks_.resize(numSets_ * assoc_);
    data_.resize(numSets_ * assoc_);
    mruWay_.assign(numSets_, 0);
}

std::size_t
CacheArray::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>(line_addr >> kLineShift) &
           (numSets_ - 1);
}

CacheBlock *
CacheArray::lookup(Addr line_addr)
{
    std::size_t set = setIndex(line_addr);
    std::size_t base = set * assoc_;
    std::size_t mru = mruWay_[set];
    CacheBlock &hot = blocks_[base + mru];
    if (hot.valid && hot.lineAddr == line_addr)
        return &hot;
    for (std::size_t w = 0; w < assoc_; ++w) {
        if (w == mru)
            continue;
        CacheBlock &blk = blocks_[base + w];
        if (blk.valid && blk.lineAddr == line_addr)
            return &blk;
    }
    return nullptr;
}

const CacheBlock *
CacheArray::lookup(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->lookup(line_addr);
}

void
CacheArray::touch(CacheBlock &blk)
{
    blk.lastUse = ++useStamp_;
    std::size_t idx = indexOf(blk);
    mruWay_[idx / assoc_] = static_cast<std::uint32_t>(idx % assoc_);
}

CacheBlock *
CacheArray::victim(Addr line_addr,
                   const std::function<bool(const CacheBlock &)> &evictable)
{
    std::size_t set = setIndex(line_addr);
    CacheBlock *lru = nullptr;
    for (std::size_t w = 0; w < assoc_; ++w) {
        CacheBlock &blk = blocks_[set * assoc_ + w];
        if (!blk.valid)
            return &blk;
        if (evictable && !evictable(blk))
            continue;
        if (!lru || blk.lastUse < lru->lastUse)
            lru = &blk;
    }
    return lru;
}

void
CacheArray::insert(CacheBlock &blk, Addr line_addr)
{
    GTSC_ASSERT(setIndex(line_addr) == indexOf(blk) / assoc_,
                "insert into wrong set");
    blk.valid = true;
    blk.dirty = false;
    blk.lineAddr = line_addr;
    blk.meta = BlockMeta{};
    data_[indexOf(blk)] = LineData{};
    touch(blk);
}

void
CacheArray::invalidateAll()
{
    for (auto &blk : blocks_)
        blk.valid = false;
}

} // namespace gtsc::mem
