/**
 * @file
 * Functional contents of one cache line.
 *
 * The simulator is value-accurate: every line carries real word data
 * so that coherence/consistency can be *checked*, not just timed.
 */

#ifndef GTSC_MEM_LINE_DATA_HH_
#define GTSC_MEM_LINE_DATA_HH_

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace gtsc::mem
{

/** Line geometry: 128-byte lines of 32 4-byte words (GPU standard). */
inline constexpr unsigned kLineBytes = 128;
inline constexpr unsigned kWordBytes = 4;
inline constexpr unsigned kWordsPerLine = kLineBytes / kWordBytes;
inline constexpr unsigned kLineShift = 7; // log2(kLineBytes)

static_assert((1u << kLineShift) == kLineBytes);

/** Align a byte address down to its line. */
inline Addr
lineAlign(Addr a)
{
    return a & ~Addr{kLineBytes - 1};
}

/** Word index of a byte address within its line. */
inline unsigned
wordInLine(Addr a)
{
    return static_cast<unsigned>((a >> 2) & (kWordsPerLine - 1));
}

/** Home L2 partition of a line (line-interleaved across banks). */
inline PartitionId
partitionOf(Addr line_addr, unsigned num_partitions)
{
    return static_cast<PartitionId>(
        (line_addr >> kLineShift) % num_partitions);
}

/** One line worth of 32-bit words. */
struct LineData
{
    std::array<std::uint32_t, kWordsPerLine> words{};

    std::uint32_t word(unsigned i) const { return words[i]; }
    void setWord(unsigned i, std::uint32_t v) { words[i] = v; }

    /** Copy the masked words of `src` into this line. */
    void
    mergeMasked(const LineData &src, std::uint32_t word_mask)
    {
        for (unsigned i = 0; i < kWordsPerLine; ++i) {
            if (word_mask & (1u << i))
                words[i] = src.words[i];
        }
    }

    bool operator==(const LineData &o) const { return words == o.words; }
};

} // namespace gtsc::mem

#endif // GTSC_MEM_LINE_DATA_HH_
