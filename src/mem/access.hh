/**
 * @file
 * A coalesced memory access: the unit of work handed from an SM's
 * LDST unit to its private-cache controller. One warp instruction
 * may produce several Accesses (one per distinct line).
 */

#ifndef GTSC_MEM_ACCESS_HH_
#define GTSC_MEM_ACCESS_HH_

#include <cstdint>

#include "mem/line_data.hh"
#include "sim/types.hh"

namespace gtsc::mem
{

struct Access
{
    bool isStore = false;
    Addr lineAddr = 0;
    /** Words read (loads) or written (stores) within the line. */
    std::uint32_t wordMask = 0;
    /** Store payload for the masked words. */
    LineData storeData{};

    SmId sm = 0;
    WarpId warp = 0;
    /** Unique id assigned by the SM; completion is keyed on it. */
    std::uint64_t id = 0;
    /**
     * Re-entering the cache after waiting in the MSHR / behind a
     * locked line. Hit/miss classification counts only first probes
     * so fill-then-hit is not double-counted.
     */
    bool replayed = false;

    /**
     * Re-initialize a recycled Access for one coalesced line. The
     * coalescer reuses live elements of its output buffer instead of
     * clear()+emplace (which would re-run the value-initializing
     * constructor): loads skip re-zeroing the 128-byte storeData they
     * never read, stores get a clean payload before the masked words
     * are set. Everything an Access consumer reads is reset here.
     */
    void
    beginLine(bool is_store, Addr line, SmId sm_id, WarpId warp_id)
    {
        isStore = is_store;
        lineAddr = line;
        wordMask = 0;
        sm = sm_id;
        warp = warp_id;
        id = 0;
        replayed = false;
        if (is_store)
            storeData = LineData{};
    }
};

/**
 * What a completed load observed. `loadTs` / `leaseGrant` feed the
 * coherence checker: logical time for G-TSC, the physical cycle the
 * L2 serviced the data for TC/baseline.
 */
struct AccessResult
{
    LineData data{};
    bool l1Hit = false;
    /** G-TSC: effective logical timestamp of the load. */
    Ts loadTs = 0;
    /** G-TSC: timestamp epoch the load executed in. */
    std::uint32_t epoch = 0;
    /** TC/BL: cycle at which L2 provided/renewed this data. */
    Cycle leaseGrant = 0;
};

} // namespace gtsc::mem

#endif // GTSC_MEM_ACCESS_HH_
