#include "mem/packet.hh"

#include <bit>
#include <sstream>

namespace gtsc::mem
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::BusRd:
        return "BusRd";
      case MsgType::BusWr:
        return "BusWr";
      case MsgType::BusFill:
        return "BusFill";
      case MsgType::BusRnw:
        return "BusRnw";
      case MsgType::BusWrAck:
        return "BusWrAck";
    }
    return "?";
}

std::uint32_t
maskedDataBytes(std::uint32_t word_mask)
{
    // GPU stores are written in 32-byte sectors (8 words each); a
    // store message carries every sector it touches.
    std::uint32_t bytes = 0;
    for (unsigned sector = 0; sector < 4; ++sector) {
        std::uint32_t sector_mask = 0xffu << (sector * 8);
        if (word_mask & sector_mask)
            bytes += 32;
    }
    return bytes;
}

std::string
Packet::toString() const
{
    std::ostringstream oss;
    oss << msgTypeName(type) << " line=0x" << std::hex << lineAddr
        << std::dec << " sm=" << src << " part=" << part
        << " wts=" << wts << " rts=" << rts << " warpTs=" << warpTs
        << " size=" << sizeBytes;
    return oss.str();
}

} // namespace gtsc::mem
